//! Cluster-closure incremental re-assignment through the facade:
//! `ClusterSpec::closures(true)` (the default) must return **byte-identical**
//! runs to `closures(false)` full re-evaluation — assignments, centroids,
//! per-iteration moves / cost / candidate volume / active clusters — for
//! every modality, thread count, and shard count; interact correctly with
//! warm starts and mini-batch fits; actually skip work (the whole point);
//! and keep parsing spec / envelope JSON written before the flag existed.
//!
//! The skip rule ("cached shortlist touches no active cluster → keep the
//! previous assignment") is proven sound in `docs/ARCHITECTURE.md`
//! § Incremental assignment; these tests pin the identity empirically across
//! the full engine matrix so a regression in any layer (serial pass, Jacobi
//! engine, shard protocol, mini-batch cache) trips a named assertion.

use lshclust::{ClusterRun, ClusterSpec, Clusterer, Fit, FittedModel, Lsh, NumericDataset};
use lshclust_categorical::Dataset;
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::kprototypes::MixedDataset;
use proptest::prelude::*;

fn categorical_fixture(seed: u64) -> Dataset {
    generate(&DatgenConfig::new(240, 24, 16).seed(seed))
}

/// Loosely-ruled datgen blobs: most attributes free, so fits take several
/// iterations to settle instead of converging on the first pass — the
/// regime where closures actually skip work mid-run.
fn noisy_fixture(seed: u64) -> Dataset {
    let mut cfg = DatgenConfig::new(400, 24, 16).seed(seed);
    cfg.rule_min_frac = 0.08;
    cfg.rule_max_frac = 0.2;
    generate(&cfg)
}

fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

const MINHASH: Lsh = Lsh::MinHash { bands: 12, rows: 2 };
const SIMHASH: Lsh = Lsh::SimHash { bands: 8, rows: 12 };
const UNION: Lsh = Lsh::Union {
    bands: 12,
    rows: 2,
    sim_bands: 8,
    sim_rows: 12,
};

fn spec_for(lsh: Lsh, seed: u64, threads: usize, shards: usize, closures: bool) -> ClusterSpec {
    ClusterSpec::new(24)
        .lsh(lsh)
        .seed(seed)
        .threads(threads)
        .shards(shards)
        .closures(closures)
        .max_iterations(30)
}

/// Byte-identity across every observable surface except wall-clock and the
/// skip counter itself (`skipped_items` is the one field that *should*
/// differ: the closure run skips, the exhaustive run records zero).
/// `active_clusters` is recorded identically by both engines.
fn assert_runs_identical(on: &ClusterRun, off: &ClusterRun, label: &str) {
    assert_eq!(on.assignments, off.assignments, "{label}: assignments");
    assert_eq!(
        on.centroids.modes(),
        off.centroids.modes(),
        "{label}: modes"
    );
    assert_eq!(
        on.centroids.means(),
        off.centroids.means(),
        "{label}: means"
    );
    assert_eq!(
        on.centroids.prototypes(),
        off.centroids.prototypes(),
        "{label}: prototypes"
    );
    assert_eq!(
        on.summary.converged, off.summary.converged,
        "{label}: converged"
    );
    assert_eq!(on.index_stats, off.index_stats, "{label}: stats");
    let trajectory = |run: &ClusterRun| -> Vec<(usize, usize, u64, u64, usize)> {
        run.summary
            .iterations
            .iter()
            .map(|s| {
                (
                    s.iteration,
                    s.moves,
                    s.cost,
                    s.avg_candidates.to_bits(),
                    s.active_clusters,
                )
            })
            .collect()
    };
    assert_eq!(trajectory(on), trajectory(off), "{label}: trajectory");
    for s in &off.summary.iterations {
        assert_eq!(s.skipped_items, 0, "{label}: exhaustive run never skips");
    }
}

// ---------------------------------------------------------------------------
// Byte-identity, closures × threads × shards × modality.
// ---------------------------------------------------------------------------

#[test]
fn categorical_closure_fits_are_byte_identical() {
    let dataset = noisy_fixture(5);
    for threads in [1usize, 2, 4] {
        for shards in [1usize, 2, 4] {
            let on = Clusterer::new(spec_for(MINHASH, 5, threads, shards, true))
                .fit(&dataset)
                .unwrap();
            let off = Clusterer::new(spec_for(MINHASH, 5, threads, shards, false))
                .fit(&dataset)
                .unwrap();
            assert_runs_identical(&on, &off, &format!("categorical t={threads} s={shards}"));
        }
    }
}

#[test]
fn numeric_closure_fits_are_byte_identical() {
    let dataset = categorical_fixture(6);
    let labels = dataset.labels().unwrap().to_vec();
    let numeric = numeric_blobs(&labels, 6);
    for threads in [1usize, 2, 4] {
        for shards in [1usize, 2, 4] {
            let on = Clusterer::new(spec_for(SIMHASH, 6, threads, shards, true))
                .fit(&numeric)
                .unwrap();
            let off = Clusterer::new(spec_for(SIMHASH, 6, threads, shards, false))
                .fit(&numeric)
                .unwrap();
            assert_runs_identical(&on, &off, &format!("numeric t={threads} s={shards}"));
        }
    }
}

#[test]
fn mixed_closure_fits_are_byte_identical() {
    let dataset = categorical_fixture(7);
    let labels = dataset.labels().unwrap().to_vec();
    let numeric = numeric_blobs(&labels, 6);
    let mixed = MixedDataset::new(&dataset, &numeric);
    for threads in [1usize, 2, 4] {
        for shards in [1usize, 2, 4] {
            let on = Clusterer::new(spec_for(UNION, 7, threads, shards, true))
                .fit(&mixed)
                .unwrap();
            let off = Clusterer::new(spec_for(UNION, 7, threads, shards, false))
                .fit(&mixed)
                .unwrap();
            assert_runs_identical(&on, &off, &format!("mixed t={threads} s={shards}"));
        }
    }
}

/// The engine must actually skip re-evaluations — identity alone could be
/// trivially satisfied by never skipping anything. On a converging fit the
/// active set shrinks, so later iterations skip most items, and the skip
/// counts must decay toward "everything skipped" as moves hit zero.
#[test]
fn closure_runs_skip_work_and_exhaustive_runs_do_not() {
    let dataset = noisy_fixture(5);
    for (threads, shards) in [(1usize, 1usize), (2, 1), (2, 2)] {
        let on = Clusterer::new(spec_for(MINHASH, 5, threads, shards, true))
            .fit(&dataset)
            .unwrap();
        let total: usize = on.summary.iterations.iter().map(|s| s.skipped_items).sum();
        assert!(total > 0, "t={threads} s={shards}: closures never skipped");
        // A zero-move iteration leaves every centroid in place, so the
        // following iteration (if any) can re-evaluate nothing.
        let iters = &on.summary.iterations;
        for pair in iters.windows(2) {
            if pair[0].moves == 0 && pair[0].active_clusters == 0 {
                assert_eq!(
                    pair[1].skipped_items,
                    dataset.n_items(),
                    "t={threads} s={shards}: quiescent pass still re-evaluated items"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Warm starts and mini-batch fits.
// ---------------------------------------------------------------------------

#[test]
fn warm_started_closure_refits_are_byte_identical() {
    let dataset = noisy_fixture(9);
    let first = Clusterer::new(spec_for(MINHASH, 9, 2, 1, true))
        .fit(&dataset)
        .unwrap();
    let on = spec_for(MINHASH, 9, 2, 1, true)
        .warm_start(&first.model)
        .fit(&dataset)
        .unwrap();
    let off = spec_for(MINHASH, 9, 2, 1, false)
        .warm_start(&first.model)
        .fit(&dataset)
        .unwrap();
    assert_runs_identical(&on, &off, "warm refit");
}

#[test]
fn minibatch_closure_fits_are_byte_identical() {
    let dataset = categorical_fixture(11);
    let schedule = Fit::MiniBatch {
        batch_size: 64,
        n_steps: 60,
        refresh_every: 16,
    };
    for threads in [1usize, 2] {
        let on = Clusterer::new(spec_for(MINHASH, 11, threads, 1, true).fit(schedule))
            .fit(&dataset)
            .unwrap();
        let off = Clusterer::new(spec_for(MINHASH, 11, threads, 1, false).fit(schedule))
            .fit(&dataset)
            .unwrap();
        assert_eq!(
            on.assignments, off.assignments,
            "minibatch t={threads}: assignments"
        );
        assert_eq!(
            on.centroids.modes(),
            off.centroids.modes(),
            "minibatch t={threads}: modes"
        );
        let per_step = |run: &ClusterRun| -> Vec<(usize, u64, usize)> {
            run.summary
                .iterations
                .iter()
                .map(|s| (s.moves, s.cost, s.active_clusters))
                .collect()
        };
        assert_eq!(
            per_step(&on),
            per_step(&off),
            "minibatch t={threads}: steps"
        );
        for s in &off.summary.iterations {
            assert_eq!(s.skipped_items, 0, "minibatch off-run never reuses");
        }
    }
}

/// Fallback decisions cache too: aggressive banding (2 bands × 16 rows) makes
/// the centroid shortlists come back empty, so nearly every batch decision is
/// a full-`k` fallback. The reuse cache keys those by refresh epoch and
/// invalidates them on *any* centroid change — and the fit must stay
/// byte-identical to the closure-disabled run while still skipping work.
#[test]
fn minibatch_fallback_caching_is_byte_identical() {
    let dataset = categorical_fixture(13);
    let sparse = Lsh::MinHash { bands: 2, rows: 16 };
    let schedule = Fit::MiniBatch {
        batch_size: 64,
        n_steps: 60,
        refresh_every: 16,
    };
    for threads in [1usize, 2] {
        let on = Clusterer::new(spec_for(sparse, 13, threads, 1, true).fit(schedule))
            .fit(&dataset)
            .unwrap();
        let off = Clusterer::new(spec_for(sparse, 13, threads, 1, false).fit(schedule))
            .fit(&dataset)
            .unwrap();
        assert_eq!(
            on.assignments, off.assignments,
            "fallback cache t={threads}: assignments"
        );
        assert_eq!(
            on.centroids.modes(),
            off.centroids.modes(),
            "fallback cache t={threads}: modes"
        );
        let per_step = |run: &ClusterRun| -> Vec<(usize, u64, u64, usize)> {
            run.summary
                .iterations
                .iter()
                .map(|s| {
                    (
                        s.moves,
                        s.cost,
                        s.avg_candidates.to_bits(),
                        s.active_clusters,
                    )
                })
                .collect()
        };
        assert_eq!(
            per_step(&on),
            per_step(&off),
            "fallback cache t={threads}: steps (avg_candidates must count reused fallbacks at k)"
        );
        let reused: usize = on.summary.iterations.iter().map(|s| s.skipped_items).sum();
        assert!(
            reused > 0,
            "fallback cache t={threads}: expected cached full-k decisions to be reused"
        );
        for s in &off.summary.iterations {
            assert_eq!(s.skipped_items, 0, "fallback off-run never reuses");
        }
    }
}

// ---------------------------------------------------------------------------
// Serde compatibility: specs and envelopes written before the flag existed.
// ---------------------------------------------------------------------------

#[test]
fn pre_closures_spec_and_envelope_json_parse_with_closures_on() {
    let spec = spec_for(MINHASH, 3, 2, 1, true);
    let json = serde_json::to_string(&spec).unwrap();
    assert!(json.contains("\"closures\":true"));
    let legacy = json.replace(",\"closures\":true", "");
    assert!(!legacy.contains("closures"), "surgery failed: {legacy}");
    let back: ClusterSpec = serde_json::from_str(&legacy).unwrap();
    assert!(back.closures, "legacy spec JSON must default closures on");

    // Whole saved envelopes embed the spec; a pre-closures envelope must
    // keep loading and re-fit with the (byte-identical) default engine.
    // Surgery happens on the value tree (the envelope is pretty-printed,
    // so string replacement would be indentation-fragile).
    use serde::{Deserialize, Serialize, Value};
    fn strip_closures(v: &mut Value) {
        match v {
            Value::Object(entries) => {
                entries.retain(|(k, _)| k != "closures");
                for (_, child) in entries.iter_mut() {
                    strip_closures(child);
                }
            }
            Value::Array(items) => {
                for item in items.iter_mut() {
                    strip_closures(item);
                }
            }
            _ => {}
        }
    }
    let dataset = categorical_fixture(3);
    let run = Clusterer::new(spec).fit(&dataset).unwrap();
    let mut tree = Serialize::to_value(&run.model);
    strip_closures(&mut tree);
    let model = <FittedModel as Deserialize>::from_value(&tree).unwrap();
    assert!(
        model.spec().closures,
        "legacy envelope defaults closures on"
    );
}

// ---------------------------------------------------------------------------
// Property: identity is seed-independent, not a fixture accident.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn closure_identity_holds_for_arbitrary_seeds(
        seed in 0u64..48,
        threads in 1usize..4,
    ) {
        let dataset = noisy_fixture(seed);
        let on = Clusterer::new(spec_for(MINHASH, seed, threads, 1, true))
            .fit(&dataset)
            .unwrap();
        let off = Clusterer::new(spec_for(MINHASH, seed, threads, 1, false))
            .fit(&dataset)
            .unwrap();
        prop_assert_eq!(&on.assignments, &off.assignments);
        prop_assert_eq!(on.centroids.modes(), off.centroids.modes());
        let costs = |run: &ClusterRun| -> Vec<u64> {
            run.summary.iterations.iter().map(|s| s.cost).collect()
        };
        prop_assert_eq!(costs(&on), costs(&off));
    }
}
