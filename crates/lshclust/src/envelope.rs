//! Byte-level container of the **v2 binary model envelope**: a little-endian
//! sectioned layout (magic + version + section table + payloads) that
//! [`crate::FittedModel::to_bytes`] writes and
//! [`crate::FittedModel::from_bytes`] reads.
//!
//! This module owns only the *container* — magic sniffing, the section
//! table, and a checked reader that validates every offset/length against
//! the buffer before any payload is touched. What goes *inside* each
//! section (centroid buffers, flat band-key buffers, the spec JSON) is the
//! business of `model.rs`.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"LSHM2BIN"
//! 8       4     version (u32, = 2)
//! 12      4     n_sections (u32, ≤ 64)
//! 16      24×n  section table: { id: u32, reserved: u32 = 0,
//!                                offset: u64, len: u64 }
//! …             section payloads (table order, contiguous)
//! ```
//!
//! The reader is written for hostile input: every length field is checked
//! against the real buffer size **before** any allocation is sized from it,
//! so truncated or bit-flipped artifacts yield a typed
//! [`ModelError`](crate::ModelError) instead of a panic or an OOM-sized
//! `Vec`.

use crate::model::ModelError;

/// First eight bytes of every v2 binary envelope. Anything else is sniffed
/// as v1 JSON by [`crate::FittedModel::from_bytes`].
pub(crate) const MAGIC: [u8; 8] = *b"LSHM2BIN";

/// Container version this build writes and accepts.
pub(crate) const VERSION: u32 = 2;

/// Sanity cap on the section count: the format defines ten section ids, so
/// any table claiming more than this is corruption, and the cap bounds the
/// table allocation long before `n_sections × 24` is trusted.
pub(crate) const MAX_SECTIONS: u32 = 64;

/// Fixed-size prefix before the section table.
const HEADER_LEN: usize = 16;
/// Bytes per section-table entry.
const ENTRY_LEN: usize = 24;

// --- section ids ------------------------------------------------------------

/// `ClusterSpec` as canonical compact JSON (UTF-8).
pub(crate) const SEC_SPEC: u32 = 1;
/// One byte: 0 = categorical, 1 = numeric, 2 = mixed.
pub(crate) const SEC_MODALITY: u32 = 2;
/// Training `Schema` as compact JSON (UTF-8).
pub(crate) const SEC_SCHEMA: u32 = 3;
/// Mode matrix: `u64 k, u64 n_attrs`, then `k × n_attrs` `u32` value ids.
pub(crate) const SEC_MODES: u32 = 4;
/// Mean matrix: `u64 k, u64 dim`, then `k × dim` `f64` coordinates.
pub(crate) const SEC_MEANS: u32 = 5;
/// Mixing weight γ: one `f64`.
pub(crate) const SEC_GAMMA: u32 = 6;
/// Categorical centroid-index band keys: `u64 k, u64 bands`, then
/// `k × bands` `u64` keys (item-major — the `LshIndex` serialized form).
pub(crate) const SEC_CAT_KEYS: u32 = 7;
/// Numeric centroid-index band keys, same shape as [`SEC_CAT_KEYS`].
pub(crate) const SEC_NUM_KEYS: u32 = 8;
/// Numeric index centring mean: `u64 dim`, then `dim` `f64` coordinates.
pub(crate) const SEC_NUM_MEAN: u32 = 9;
/// Centroid-linkage dendrogram (`lshclust::sim`): `u64 k, u64 n_merges,
/// u64 fallback_steps`, then per merge `u32 a, u32 b, f64 height`.
pub(crate) const SEC_DENDRO: u32 = 10;

/// Human name of a section id, for error messages.
pub(crate) fn section_name(id: u32) -> &'static str {
    match id {
        SEC_SPEC => "spec",
        SEC_MODALITY => "modality",
        SEC_SCHEMA => "schema",
        SEC_MODES => "modes",
        SEC_MEANS => "means",
        SEC_GAMMA => "gamma",
        SEC_CAT_KEYS => "cat-band-keys",
        SEC_NUM_KEYS => "num-band-keys",
        SEC_NUM_MEAN => "num-index-mean",
        SEC_DENDRO => "dendrogram",
        _ => "unknown",
    }
}

pub(crate) fn corrupt(msg: impl Into<String>) -> ModelError {
    ModelError::Corrupt(msg.into())
}

// --- writer -----------------------------------------------------------------

/// Accumulates `(id, payload)` sections and renders the framed envelope.
/// Sections are laid out in push order, so the output is deterministic.
pub(crate) struct Writer {
    sections: Vec<(u32, Vec<u8>)>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self {
            sections: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, id: u32, payload: Vec<u8>) {
        self.sections.push((id, payload));
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        let n = self.sections.len();
        assert!(n as u32 <= MAX_SECTIONS, "writer exceeds the section cap");
        let table_end = HEADER_LEN + n * ENTRY_LEN;
        let total: usize = table_end + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        let mut offset = table_end as u64;
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        debug_assert_eq!(out.len(), total);
        out
    }
}

// --- payload write helpers --------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// --- reader -----------------------------------------------------------------

/// The parsed section table: every `(offset, len)` has been bounds-checked
/// against the buffer, so payload access is infallible slicing.
pub(crate) struct Sections<'a> {
    entries: Vec<(u32, &'a [u8])>,
}

impl<'a> Sections<'a> {
    /// Validates the frame (magic, version, table) and returns the section
    /// map. Every check happens before any payload byte is interpreted.
    pub(crate) fn parse(bytes: &'a [u8]) -> Result<Self, ModelError> {
        if bytes.len() < HEADER_LEN {
            return Err(corrupt(format!(
                "artifact of {} bytes is shorter than the {HEADER_LEN}-byte v2 header",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(ModelError::Envelope(
                "magic bytes are not `LSHM2BIN`".to_owned(),
            ));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ModelError::Envelope(format!(
                "binary envelope version {version} is not supported \
                 (this build reads version {VERSION})"
            )));
        }
        let n = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        if n > MAX_SECTIONS {
            return Err(corrupt(format!(
                "section table claims {n} sections (cap is {MAX_SECTIONS})"
            )));
        }
        let n = n as usize;
        let table_end = HEADER_LEN + n * ENTRY_LEN;
        if table_end > bytes.len() {
            return Err(corrupt(format!(
                "section table of {n} entries extends past the {}-byte artifact",
                bytes.len()
            )));
        }
        let mut entries: Vec<(u32, &[u8])> = Vec::with_capacity(n);
        for i in 0..n {
            let at = HEADER_LEN + i * ENTRY_LEN;
            let entry = &bytes[at..at + ENTRY_LEN];
            let id = u32::from_le_bytes(entry[0..4].try_into().expect("4 bytes"));
            let reserved = u32::from_le_bytes(entry[4..8].try_into().expect("4 bytes"));
            if reserved != 0 {
                return Err(corrupt(format!(
                    "section {} carries a non-zero reserved word",
                    section_name(id)
                )));
            }
            let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes"));
            let end = offset.checked_add(len).ok_or_else(|| {
                corrupt(format!("section {} offset+len overflows", section_name(id)))
            })?;
            if end > bytes.len() as u64 || offset < table_end as u64 {
                return Err(corrupt(format!(
                    "section {} [{offset}, {end}) lies outside the payload \
                     region of the {}-byte artifact",
                    section_name(id),
                    bytes.len()
                )));
            }
            if entries.iter().any(|(seen, _)| *seen == id) {
                return Err(corrupt(format!("duplicate section {}", section_name(id))));
            }
            entries.push((id, &bytes[offset as usize..end as usize]));
        }
        Ok(Self { entries })
    }

    pub(crate) fn get(&self, id: u32) -> Option<&'a [u8]> {
        self.entries
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, payload)| *payload)
    }

    pub(crate) fn require(&self, id: u32) -> Result<&'a [u8], ModelError> {
        self.get(id)
            .ok_or_else(|| corrupt(format!("missing section {}", section_name(id))))
    }
}

/// Reads the `u64` at `at` from a payload whose length was already
/// validated by the caller.
pub(crate) fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// A payload framed as `u64 rows, u64 cols, rows × cols cells` of
/// `cell_bytes` each. Returns `(rows, cols, cells)` only when the payload
/// length agrees *exactly* with its own header — the cross-check that makes
/// every downstream allocation bounded by the artifact size.
pub(crate) fn matrix_frame<'a>(
    bytes: &'a [u8],
    cell_bytes: usize,
    what: &str,
) -> Result<(usize, usize, &'a [u8]), ModelError> {
    if bytes.len() < 16 {
        return Err(corrupt(format!(
            "{what} section is shorter than its header"
        )));
    }
    let rows = read_u64(bytes, 0);
    let cols = read_u64(bytes, 8);
    let expected = rows
        .checked_mul(cols)
        .and_then(|cells| cells.checked_mul(cell_bytes as u64))
        .and_then(|payload| payload.checked_add(16));
    if expected != Some(bytes.len() as u64) {
        return Err(corrupt(format!(
            "{what} section length {} disagrees with its {rows}×{cols} header",
            bytes.len()
        )));
    }
    Ok((rows as usize, cols as usize, &bytes[16..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_envelope() -> Vec<u8> {
        let mut w = Writer::new();
        w.push(SEC_SPEC, b"{}".to_vec());
        w.push(SEC_MODALITY, vec![1]);
        w.finish()
    }

    #[test]
    fn round_trips_sections() {
        let bytes = two_section_envelope();
        let sections = Sections::parse(&bytes).unwrap();
        assert_eq!(sections.require(SEC_SPEC).unwrap(), b"{}");
        assert_eq!(sections.require(SEC_MODALITY).unwrap(), &[1]);
        assert!(sections.get(SEC_GAMMA).is_none());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = two_section_envelope();
        for cut in 0..bytes.len() {
            let err = match Sections::parse(&bytes[..cut]) {
                Err(e) => e,
                // The frame may survive the cut (payloads are at the end);
                // requiring both sections must then fail.
                Ok(s) => match (s.require(SEC_SPEC), s.require(SEC_MODALITY)) {
                    (Err(e), _) | (_, Err(e)) => e,
                    _ => panic!("truncation to {cut} bytes was accepted"),
                },
            };
            assert!(
                matches!(err, ModelError::Corrupt(_) | ModelError::Envelope(_)),
                "truncation to {cut} bytes: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn oversized_length_field_is_rejected_before_allocation() {
        let mut bytes = two_section_envelope();
        // Inflate the first section's len field to ~2^63.
        bytes[16 + 16..16 + 24].copy_from_slice(&(1u64 << 63).to_le_bytes());
        assert!(matches!(
            Sections::parse(&bytes),
            Err(ModelError::Corrupt(_))
        ));
    }

    #[test]
    fn matrix_frame_cross_checks_exact_length() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 2);
        put_u64(&mut payload, 3);
        for v in 0..6u32 {
            put_u32(&mut payload, v);
        }
        let (rows, cols, cells) = matrix_frame(&payload, 4, "modes").unwrap();
        assert_eq!((rows, cols, cells.len()), (2, 3, 24));

        // A header claiming u64::MAX rows must fail the checked math, not
        // size an allocation.
        let mut huge = payload.clone();
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matrix_frame(&huge, 4, "modes").is_err());

        payload.pop();
        assert!(matrix_frame(&payload, 4, "modes").is_err());
    }
}
