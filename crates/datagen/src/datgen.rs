//! The conjunctive-rule synthetic generator of §IV-A (a faithful
//! re-implementation of the defunct `datgen` tool's process as the paper
//! describes it).
//!
//! > "For all experiments we used a domain size of 40000 categorical values
//! > which can be used by each attribute … Each item will be associated with
//! > one of the k clusters. This association is decided in the form of
//! > conjunctive rules formed from the attributes … For our base experiments
//! > consisting of 100 attributes each item used a conjunctive rule involving
//! > between 40 and 80 attributes … In experiments where the number of
//! > attributes were increased, these values were scaled in proportion."
//!
//! Generated datasets are *pre-encoded*: values are raw [`ValueId`]s in
//! `0..domain_size` under an anonymous schema (no string interning — at
//! paper scale that would be 9 million pointless strings). The ground-truth
//! cluster of each item is attached as its label.

use lshclust_categorical::{Dataset, Schema, ValueId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the generator. Defaults reproduce the paper's base setup
/// (apart from the row counts, which each experiment sets).
#[derive(Clone, Debug)]
pub struct DatgenConfig {
    /// Number of items to generate.
    pub n_items: usize,
    /// Number of ground-truth clusters (= conjunctive rules).
    pub n_clusters: usize,
    /// Attributes per item.
    pub n_attrs: usize,
    /// Category domain size per attribute (paper: 40 000).
    pub domain_size: u32,
    /// Minimum fraction of attributes bound by a rule (paper: 40/100).
    pub rule_min_frac: f64,
    /// Maximum fraction of attributes bound by a rule (paper: 80/100).
    pub rule_max_frac: f64,
    /// `true` assigns items to clusters round-robin (near-equal populations);
    /// `false` assigns uniformly at random.
    pub balanced: bool,
    /// RNG seed.
    pub seed: u64,
}

impl DatgenConfig {
    /// Paper-faithful defaults for the given shape.
    pub fn new(n_items: usize, n_clusters: usize, n_attrs: usize) -> Self {
        Self {
            n_items,
            n_clusters,
            n_attrs,
            domain_size: 40_000,
            rule_min_frac: 0.4,
            rule_max_frac: 0.8,
            balanced: false,
            seed: 0,
        }
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches to round-robin cluster populations.
    pub fn balanced(mut self, yes: bool) -> Self {
        self.balanced = yes;
        self
    }
}

/// One cluster's conjunctive rule: `(attribute, value)` bindings.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Bound attribute indices (sorted) and their required values.
    pub bindings: Vec<(u32, ValueId)>,
}

/// Draws the per-cluster rules.
fn make_rules(cfg: &DatgenConfig, rng: &mut StdRng) -> Vec<Rule> {
    let m = cfg.n_attrs;
    let lo = ((m as f64 * cfg.rule_min_frac).round() as usize).clamp(1, m);
    let hi = ((m as f64 * cfg.rule_max_frac).round() as usize).clamp(lo, m);
    let mut attrs: Vec<u32> = (0..m as u32).collect();
    (0..cfg.n_clusters)
        .map(|_| {
            let len = rng.random_range(lo..=hi);
            // Partial Fisher–Yates for a random attribute subset.
            for i in 0..len {
                let j = rng.random_range(i..m);
                attrs.swap(i, j);
            }
            let mut bindings: Vec<(u32, ValueId)> = attrs[..len]
                .iter()
                .map(|&a| (a, ValueId(rng.random_range(0..cfg.domain_size))))
                .collect();
            bindings.sort_unstable_by_key(|&(a, _)| a);
            Rule { bindings }
        })
        .collect()
}

/// Generates a labelled dataset according to `cfg`.
pub fn generate(cfg: &DatgenConfig) -> Dataset {
    let (dataset, _) = generate_with_rules(cfg);
    dataset
}

/// Like [`generate`], also returning the rules (useful for tests that verify
/// the generator's contract).
pub fn generate_with_rules(cfg: &DatgenConfig) -> (Dataset, Vec<Rule>) {
    assert!(cfg.n_items > 0 && cfg.n_clusters > 0 && cfg.n_attrs > 0);
    assert!(cfg.domain_size >= 2, "domain must allow free values");
    assert!(
        cfg.rule_min_frac > 0.0
            && cfg.rule_min_frac <= cfg.rule_max_frac
            && cfg.rule_max_frac <= 1.0,
        "rule fractions must satisfy 0 < min ≤ max ≤ 1"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0064_6174_6765_6e00); // "datgen"
    let rules = make_rules(cfg, &mut rng);

    let m = cfg.n_attrs;
    let mut values: Vec<ValueId> = Vec::with_capacity(cfg.n_items * m);
    let mut labels: Vec<u32> = Vec::with_capacity(cfg.n_items);
    let mut row = vec![ValueId(0); m];
    for item in 0..cfg.n_items {
        let cluster = if cfg.balanced {
            (item % cfg.n_clusters) as u32
        } else {
            rng.random_range(0..cfg.n_clusters as u32)
        };
        // Free attributes first…
        for slot in row.iter_mut() {
            *slot = ValueId(rng.random_range(0..cfg.domain_size));
        }
        // …then the rule bindings overwrite their attributes.
        for &(a, v) in &rules[cluster as usize].bindings {
            row[a as usize] = v;
        }
        values.extend_from_slice(&row);
        labels.push(cluster);
    }
    (
        Dataset::from_parts(Schema::anonymous(m), values, Some(labels)),
        rules,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DatgenConfig {
        DatgenConfig {
            domain_size: 1000,
            ..DatgenConfig::new(200, 10, 20)
        }
        .seed(42)
    }

    #[test]
    fn shape_matches_config() {
        let ds = generate(&small_cfg());
        assert_eq!(ds.n_items(), 200);
        assert_eq!(ds.n_attrs(), 20);
        assert_eq!(ds.labels().map(<[u32]>::len), Some(200));
        assert!(ds.labels().unwrap().iter().all(|&l| l < 10));
    }

    #[test]
    fn items_satisfy_their_cluster_rule() {
        let (ds, rules) = generate_with_rules(&small_cfg());
        let labels = ds.labels().unwrap();
        for i in 0..ds.n_items() {
            let rule = &rules[labels[i] as usize];
            for &(a, v) in &rule.bindings {
                assert_eq!(
                    ds.row(i)[a as usize],
                    v,
                    "item {i} violates binding on attr {a}"
                );
            }
        }
    }

    #[test]
    fn rule_lengths_respect_fractions() {
        let (_, rules) = generate_with_rules(&small_cfg());
        for rule in &rules {
            let len = rule.bindings.len();
            assert!(
                (8..=16).contains(&len),
                "rule length {len} outside 40–80% of 20"
            );
        }
    }

    #[test]
    fn rule_attributes_are_distinct_and_sorted() {
        let (_, rules) = generate_with_rules(&small_cfg());
        for rule in &rules {
            for w in rule.bindings.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn same_cluster_items_are_similar_across_clusters_dissimilar() {
        use lshclust_categorical::dissimilarity::matching;
        let ds = generate(&small_cfg());
        let labels = ds.labels().unwrap();
        // Find two same-cluster items and two cross-cluster items.
        let mut same = None;
        let mut diff = None;
        'outer: for i in 0..ds.n_items() {
            for j in (i + 1)..ds.n_items() {
                if labels[i] == labels[j] && same.is_none() {
                    same = Some((i, j));
                }
                if labels[i] != labels[j] && diff.is_none() {
                    diff = Some((i, j));
                }
                if same.is_some() && diff.is_some() {
                    break 'outer;
                }
            }
        }
        let (si, sj) = same.expect("some cluster has two items");
        let (di, dj) = diff.unwrap();
        let d_same = matching(ds.row(si), ds.row(sj));
        let d_diff = matching(ds.row(di), ds.row(dj));
        // Same-cluster: only free attrs differ (≤ 60% of 20 = 12).
        assert!(d_same <= 12, "same-cluster distance {d_same}");
        // Cross-cluster with a 1000-value domain: nearly all attrs differ.
        assert!(d_diff > 12, "cross-cluster distance {d_diff}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.n_items(), b.n_items());
        for i in 0..a.n_items() {
            assert_eq!(a.row(i), b.row(i));
        }
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seed_differs() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg().seed(43));
        assert!((0..a.n_items()).any(|i| a.row(i) != b.row(i)));
    }

    #[test]
    fn balanced_mode_equalises_populations() {
        let cfg = small_cfg().balanced(true);
        let ds = generate(&cfg);
        let mut counts = vec![0usize; 10];
        for &l in ds.labels().unwrap() {
            counts[l as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 20), "{counts:?}");
    }

    #[test]
    fn values_within_domain() {
        let ds = generate(&small_cfg());
        for i in 0..ds.n_items() {
            assert!(ds.row(i).iter().all(|v| v.0 < 1000));
        }
    }

    #[test]
    #[should_panic(expected = "rule fractions")]
    fn bad_fractions_rejected() {
        let mut cfg = small_cfg();
        cfg.rule_min_frac = 0.9;
        cfg.rule_max_frac = 0.5;
        let _ = generate(&cfg);
    }

    #[test]
    fn paper_shape_smoke_test() {
        // A miniature of the paper's base dataset: ratios preserved.
        let cfg = DatgenConfig::new(900, 200, 100).seed(7);
        let ds = generate(&cfg);
        assert_eq!(ds.n_items(), 900);
        assert_eq!(ds.n_attrs(), 100);
        assert_eq!(ds.n_classes(), 200);
    }
}
