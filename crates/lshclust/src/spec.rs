//! The unified run specification: [`ClusterSpec`] and its parts.

use lshclust_core::framework::StopPolicy;
use lshclust_kmodes::init::InitMethod;
use lshclust_kmodes::kmeans::KMeansInit;
use lshclust_minhash::QueryMode;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;

/// The LSH scheme shortlisting candidate clusters — or [`Lsh::None`] for the
/// full-search exact baseline of the same family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lsh {
    /// No index: every assignment searches all `k` clusters (the paper's
    /// baselines — K-Modes, K-Means, K-Prototypes).
    None,
    /// MinHash banding over categorical items (`b` bands × `r` rows); the
    /// paper's MH-K-Modes and the streaming clusterer.
    MinHash {
        /// Number of bands `b`.
        bands: u32,
        /// Hashes per band `r`.
        rows: u32,
    },
    /// Random-hyperplane (cosine) LSH over numeric items; MH-K-Means.
    SimHash {
        /// Number of bands.
        bands: u32,
        /// Bits per band.
        rows: u32,
    },
    /// MinHash over the categorical part ∪ SimHash over the numeric part;
    /// MH-K-Prototypes on mixed data.
    Union {
        /// MinHash bands for the categorical part.
        bands: u32,
        /// MinHash rows per band.
        rows: u32,
        /// SimHash bands for the numeric part.
        sim_bands: u32,
        /// SimHash bits per band.
        sim_rows: u32,
    },
}

impl Lsh {
    /// Short scheme name (used in error messages and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Lsh::None => "None",
            Lsh::MinHash { .. } => "MinHash",
            Lsh::SimHash { .. } => "SimHash",
            Lsh::Union { .. } => "Union",
        }
    }
}

// External tagging, serde-style: `"None"` for the unit variant, otherwise
// `{"MinHash": {"bands": 20, "rows": 5}}`.
impl Serialize for Lsh {
    fn to_value(&self) -> Value {
        let tagged = |tag: &str, fields: Vec<(String, Value)>| {
            Value::Object(vec![(tag.to_owned(), Value::Object(fields))])
        };
        match *self {
            Lsh::None => Value::String("None".to_owned()),
            Lsh::MinHash { bands, rows } => tagged(
                "MinHash",
                vec![
                    ("bands".to_owned(), bands.to_value()),
                    ("rows".to_owned(), rows.to_value()),
                ],
            ),
            Lsh::SimHash { bands, rows } => tagged(
                "SimHash",
                vec![
                    ("bands".to_owned(), bands.to_value()),
                    ("rows".to_owned(), rows.to_value()),
                ],
            ),
            Lsh::Union {
                bands,
                rows,
                sim_bands,
                sim_rows,
            } => tagged(
                "Union",
                vec![
                    ("bands".to_owned(), bands.to_value()),
                    ("rows".to_owned(), rows.to_value()),
                    ("sim_bands".to_owned(), sim_bands.to_value()),
                    ("sim_rows".to_owned(), sim_rows.to_value()),
                ],
            ),
        }
    }
}

impl Deserialize for Lsh {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        if let Some("None") = v.as_str() {
            return Ok(Lsh::None);
        }
        let entries = v
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", "Lsh"))?;
        let [(tag, body)] = entries else {
            return Err(SerdeError::expected("single-variant object", "Lsh"));
        };
        let fields = body
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", "Lsh body"))?;
        match tag.as_str() {
            "MinHash" => Ok(Lsh::MinHash {
                bands: serde::field(fields, "bands", "Lsh::MinHash")?,
                rows: serde::field(fields, "rows", "Lsh::MinHash")?,
            }),
            "SimHash" => Ok(Lsh::SimHash {
                bands: serde::field(fields, "bands", "Lsh::SimHash")?,
                rows: serde::field(fields, "rows", "Lsh::SimHash")?,
            }),
            "Union" => Ok(Lsh::Union {
                bands: serde::field(fields, "bands", "Lsh::Union")?,
                rows: serde::field(fields, "rows", "Lsh::Union")?,
                sim_bands: serde::field(fields, "sim_bands", "Lsh::Union")?,
                sim_rows: serde::field(fields, "sim_rows", "Lsh::Union")?,
            }),
            other => Err(SerdeError(format!("unknown Lsh variant `{other}`"))),
        }
    }
}

/// The fit discipline: how many items each training iteration touches.
///
/// [`Fit::Full`] is the paper's batch algorithm — every pass reassigns all
/// `n` items. [`Fit::MiniBatch`] is Sculley-style stochastic fitting: each
/// step samples `batch_size` items, assigns them against the step's frozen
/// centroids (shortlisted through an LSH index **over the centroids** when
/// the spec carries an LSH scheme, with full-search fallback), and nudges
/// only the touched centroids; a final full pass produces the complete
/// clustering. The centroid index is rebuilt every `refresh_every` steps so
/// it tracks the drifting centroids.
///
/// Mini-batch fits honour `spec.threads` (batch assignment fans out
/// deterministically — equal seeds give byte-identical centroids at any
/// thread count), ignore [`crate::StopPolicy`] (the schedule is the stop
/// rule), and are servable and warm-startable like any other run. The
/// streaming inserter is inherently online and rejects `Fit::MiniBatch`
/// with [`SpecError::UnsupportedFit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Fit {
    /// Full-batch passes over all items (the paper's discipline).
    #[default]
    Full,
    /// Sculley-style sampled steps with shortlisted assignment.
    MiniBatch {
        /// Items sampled per step (clamped to `1..=n`).
        batch_size: usize,
        /// Steps before the final full assignment pass (min 1).
        n_steps: usize,
        /// Centroid-index rebuild cadence in steps (`0` = build once at
        /// step 1, never refresh). Irrelevant under [`Lsh::None`].
        refresh_every: usize,
    },
}

impl Fit {
    /// A mini-batch schedule with the default refresh cadence (8 steps) and
    /// the `10·k / batch_size` step heuristic floored at 50 steps (the one
    /// heuristic, shared with the `lshclust_kmodes` baseline so both derive
    /// identical schedules).
    pub fn mini_batch(k: usize, batch_size: usize) -> Self {
        Fit::MiniBatch {
            batch_size,
            n_steps: lshclust_kmodes::minibatch::MiniBatchConfig::default_n_steps(k, batch_size),
            refresh_every: 8,
        }
    }

    /// Short discipline name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            Fit::Full => "Full",
            Fit::MiniBatch { .. } => "MiniBatch",
        }
    }
}

// External tagging, serde-style: `"Full"` for the unit variant, otherwise
// `{"MiniBatch": {"batch_size": …, "n_steps": …, "refresh_every": …}}`.
impl Serialize for Fit {
    fn to_value(&self) -> Value {
        match *self {
            Fit::Full => Value::String("Full".to_owned()),
            Fit::MiniBatch {
                batch_size,
                n_steps,
                refresh_every,
            } => Value::Object(vec![(
                "MiniBatch".to_owned(),
                Value::Object(vec![
                    ("batch_size".to_owned(), batch_size.to_value()),
                    ("n_steps".to_owned(), n_steps.to_value()),
                    ("refresh_every".to_owned(), refresh_every.to_value()),
                ]),
            )]),
        }
    }
}

impl Deserialize for Fit {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        if let Some("Full") = v.as_str() {
            return Ok(Fit::Full);
        }
        let entries = v
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", "Fit"))?;
        let [(tag, body)] = entries else {
            return Err(SerdeError::expected("single-variant object", "Fit"));
        };
        if tag != "MiniBatch" {
            return Err(SerdeError(format!("unknown Fit variant `{tag}`")));
        }
        let fields = body
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", "Fit::MiniBatch"))?;
        Ok(Fit::MiniBatch {
            batch_size: serde::field(fields, "batch_size", "Fit::MiniBatch")?,
            n_steps: serde::field(fields, "n_steps", "Fit::MiniBatch")?,
            refresh_every: serde::field(fields, "refresh_every", "Fit::MiniBatch")?,
        })
    }
}

/// Centroid initialisation, across all families. Which strategies apply
/// depends on the modality: `Huang`/`Cao` are categorical-only, `PlusPlus`
/// is numeric-only, `RandomItems` works everywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Init {
    /// `k` distinct items chosen uniformly at random (the paper's choice).
    #[default]
    RandomItems,
    /// Huang's frequency-based synthesis (categorical only).
    Huang,
    /// Cao et al.'s density method (categorical only; deterministic).
    Cao,
    /// k-means++ D² seeding (numeric only).
    PlusPlus,
}

serde::impl_serde_unit_enum!(Init {
    RandomItems,
    Huang,
    Cao,
    PlusPlus
});

impl Init {
    /// Name for error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Init::RandomItems => "RandomItems",
            Init::Huang => "Huang",
            Init::Cao => "Cao",
            Init::PlusPlus => "PlusPlus",
        }
    }
}

/// How the MinHash index answers shortlist queries (identical results).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Query {
    /// Walk the item's `b` buckets on every query (paper-faithful).
    #[default]
    ScanBuckets,
    /// Per-item candidate lists precomputed at build time.
    Precomputed,
}

serde::impl_serde_unit_enum!(Query {
    ScanBuckets,
    Precomputed
});

impl From<Query> for QueryMode {
    fn from(q: Query) -> QueryMode {
        match q {
            Query::ScanBuckets => QueryMode::ScanBuckets,
            Query::Precomputed => QueryMode::Precomputed,
        }
    }
}

/// Extra knobs for the streaming inserter (`Clusterer::streaming`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct StreamOptions {
    /// Found a new cluster when the best shortlisted mode differs in more
    /// than this many attributes; `None` defaults to half the attributes.
    pub distance_threshold: Option<u32>,
    /// Hard cap on clusters; `None` means unbounded.
    pub max_clusters: Option<usize>,
}

serde::impl_serde_struct!(StreamOptions {
    distance_threshold,
    max_clusters
});

/// The one specification driving all four algorithm families.
///
/// Build with [`ClusterSpec::new`] and the chained setters; feed to a
/// [`crate::Clusterer`]. Serializes to JSON via `serde_json`.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Number of clusters `k` (ignored by the streaming inserter, which
    /// discovers its cluster count).
    pub k: usize,
    /// The LSH scheme, or [`Lsh::None`] for the exact baseline.
    pub lsh: Lsh,
    /// Centroid initialisation.
    pub init: Init,
    /// Seed driving initialisation *and* the hash families.
    pub seed: u64,
    /// MinHash index query mode (categorical paths).
    pub query_mode: Query,
    /// Whether an item's own index entry may contribute its current cluster
    /// to the shortlist (Algorithm 2 behaviour; `false` is the ablation).
    pub include_self: bool,
    /// Assignment-pass threads, honoured by **every** accelerated family
    /// (MinHash, SimHash, Union) plus streaming batch refinement and the
    /// serving-time `FittedModel::predict` fan-out. `1` keeps the paper's
    /// single-threaded Gauss–Seidel pass; `> 1` runs the Jacobi parallel
    /// engine (see README § Performance — results are identical at any
    /// thread count > 1, and may differ from the serial pass by an
    /// iteration of convergence). `0` is normalised to `1` at the spec
    /// boundary.
    pub threads: usize,
    /// Iteration policy: cap plus stop criteria.
    ///
    /// The accelerated paths honour all three fields. The exact baselines
    /// (`Lsh::None`) honour `max_iterations` but always stop on a zero-move
    /// or cost-stagnant pass — those criteria are built into the legacy
    /// full-search loops, so disabling the flags only affects LSH runs.
    pub stop: StopPolicy,
    /// Mixing weight γ for mixed data; `None` uses Huang's variance
    /// heuristic (`suggest_gamma`).
    pub gamma: Option<f64>,
    /// Streaming-only options.
    pub stream: StreamOptions,
    /// Fit discipline: full-batch passes or shortlisted mini-batch steps.
    pub fit: Fit,
    /// Shard count for partitioned fitting. `1` (the default) fits
    /// unsharded; `> 1` partitions items across that many shards, each with
    /// its own local LSH index, and runs the coordinator/worker protocol of
    /// `lshclust_core::shard` — in-process by default, multi-process when a
    /// worker command is configured (see `Clusterer::worker_cmd` and the
    /// `cluster fit --shards N --worker-cmd ...` CLI). Sharded fits are
    /// byte-identical to `threads > 1` unsharded fits at equal seeds.
    /// `0` is normalised to `1` at the spec boundary.
    pub shards: usize,
    /// Cluster-closure incremental re-assignment (default `true`). Each
    /// iteration the engine tracks which centroids actually changed; items
    /// whose cached candidate shortlist contains only unchanged clusters
    /// keep their assignment without re-scoring — provably the same answer
    /// full re-evaluation would return, so fits are byte-identical either
    /// way (see `docs/ARCHITECTURE.md` § Incremental assignment). `false`
    /// restores exhaustive per-pass re-evaluation (the `--no-closures` CLI
    /// escape hatch); exact baselines (`Lsh::None`) ignore the flag.
    pub closures: bool,
    /// Chunk-scheduling discipline of the Jacobi parallel engine (default
    /// `false` = contiguous chunks). `true` strides items round-robin over
    /// the workers instead, which balances skewed per-item costs; results
    /// are byte-identical either way (see `bench_threads`' scheduling
    /// axis). Irrelevant at `threads == 1` and for exact baselines.
    pub interleaved: bool,
}

// Hand-written (not `impl_serde_struct!`) for one reason: late-added fields
// (`fit`, `shards`, `closures`, `interleaved`) must default when absent, so
// every spec JSON written before they existed — saved model envelopes
// included — still parses.
impl Serialize for ClusterSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("k".to_owned(), self.k.to_value()),
            ("lsh".to_owned(), self.lsh.to_value()),
            ("init".to_owned(), self.init.to_value()),
            ("seed".to_owned(), self.seed.to_value()),
            ("query_mode".to_owned(), self.query_mode.to_value()),
            ("include_self".to_owned(), self.include_self.to_value()),
            ("threads".to_owned(), self.threads.to_value()),
            ("stop".to_owned(), self.stop.to_value()),
            ("gamma".to_owned(), self.gamma.to_value()),
            ("stream".to_owned(), self.stream.to_value()),
            ("fit".to_owned(), self.fit.to_value()),
            ("shards".to_owned(), self.shards.to_value()),
            ("closures".to_owned(), self.closures.to_value()),
            ("interleaved".to_owned(), self.interleaved.to_value()),
        ])
    }
}

impl Deserialize for ClusterSpec {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", "ClusterSpec"))?;
        let fit = match entries.iter().find(|(key, _)| key == "fit") {
            Some((_, value)) => Fit::from_value(value)
                .map_err(|e| SerdeError(format!("field `fit` of ClusterSpec: {}", e.0)))?,
            None => Fit::Full, // pre-`fit` spec JSON
        };
        let shards = match entries.iter().find(|(key, _)| key == "shards") {
            Some((_, value)) => usize::from_value(value)
                .map_err(|e| SerdeError(format!("field `shards` of ClusterSpec: {}", e.0)))?,
            None => 1, // pre-`shards` spec JSON
        };
        let closures = match entries.iter().find(|(key, _)| key == "closures") {
            Some((_, value)) => bool::from_value(value)
                .map_err(|e| SerdeError(format!("field `closures` of ClusterSpec: {}", e.0)))?,
            None => true, // pre-`closures` spec JSON: default-on, byte-identical
        };
        let interleaved = match entries.iter().find(|(key, _)| key == "interleaved") {
            Some((_, value)) => bool::from_value(value)
                .map_err(|e| SerdeError(format!("field `interleaved` of ClusterSpec: {}", e.0)))?,
            None => false, // pre-`interleaved` spec JSON: contiguous chunks
        };
        Ok(Self {
            k: serde::field(entries, "k", "ClusterSpec")?,
            lsh: serde::field(entries, "lsh", "ClusterSpec")?,
            init: serde::field(entries, "init", "ClusterSpec")?,
            seed: serde::field(entries, "seed", "ClusterSpec")?,
            query_mode: serde::field(entries, "query_mode", "ClusterSpec")?,
            include_self: serde::field(entries, "include_self", "ClusterSpec")?,
            threads: serde::field(entries, "threads", "ClusterSpec")?,
            stop: serde::field(entries, "stop", "ClusterSpec")?,
            gamma: serde::field(entries, "gamma", "ClusterSpec")?,
            stream: serde::field(entries, "stream", "ClusterSpec")?,
            fit,
            shards,
            closures,
            interleaved,
        })
    }
}

impl ClusterSpec {
    /// A spec with the workspace defaults: exact baseline (no LSH), random
    /// init, seed 0, scan-bucket queries, self-collision on, one thread,
    /// 100-iteration cap.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            lsh: Lsh::None,
            init: Init::RandomItems,
            seed: 0,
            query_mode: Query::ScanBuckets,
            include_self: true,
            threads: 1,
            stop: StopPolicy::default(),
            gamma: None,
            stream: StreamOptions::default(),
            fit: Fit::Full,
            shards: 1,
            closures: true,
            interleaved: false,
        }
    }

    /// Sets the LSH scheme.
    ///
    /// ```
    /// use lshclust::{ClusterSpec, Lsh};
    ///
    /// let spec = ClusterSpec::new(100).lsh(Lsh::MinHash { bands: 20, rows: 5 });
    /// assert_eq!(spec.lsh.name(), "MinHash");
    /// ```
    pub fn lsh(mut self, lsh: Lsh) -> Self {
        self.lsh = lsh;
        self
    }

    /// Sets the initialisation strategy.
    ///
    /// ```
    /// use lshclust::{ClusterSpec, Init};
    ///
    /// let spec = ClusterSpec::new(8).init(Init::Cao); // deterministic, categorical-only
    /// assert_eq!(spec.init, Init::Cao);
    /// ```
    pub fn init(mut self, init: Init) -> Self {
        self.init = init;
        self
    }

    /// Sets the seed driving initialisation *and* the hash families.
    ///
    /// ```
    /// use lshclust::ClusterSpec;
    ///
    /// assert_eq!(ClusterSpec::new(4).seed(42).seed, 42);
    /// ```
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the index query mode.
    ///
    /// ```
    /// use lshclust::{ClusterSpec, Query};
    ///
    /// let spec = ClusterSpec::new(4).query_mode(Query::Precomputed);
    /// assert_eq!(spec.query_mode, Query::Precomputed); // identical results, different cost profile
    /// ```
    pub fn query_mode(mut self, query_mode: Query) -> Self {
        self.query_mode = query_mode;
        self
    }

    /// Enables/disables self-collision (ablation).
    ///
    /// ```
    /// use lshclust::ClusterSpec;
    ///
    /// assert!(!ClusterSpec::new(4).include_self(false).include_self);
    /// ```
    pub fn include_self(mut self, yes: bool) -> Self {
        self.include_self = yes;
        self
    }

    /// Sets the number of assignment threads. `0` is documented shorthand
    /// for "serial" and clamps to `1` — no panic, so specs assembled from
    /// untrusted JSON or CLI flags normalise instead of aborting.
    ///
    /// ```
    /// use lshclust::ClusterSpec;
    ///
    /// assert_eq!(ClusterSpec::new(4).threads(4).threads, 4);
    /// assert_eq!(ClusterSpec::new(4).threads(0).threads, 1); // 0 ⇒ serial
    /// ```
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Sets the full iteration policy.
    ///
    /// ```
    /// use lshclust::{ClusterSpec, StopPolicy};
    ///
    /// let spec = ClusterSpec::new(4).stop(StopPolicy::max_iterations(12));
    /// assert_eq!(spec.stop.max_iterations, 12);
    /// ```
    pub fn stop(mut self, stop: StopPolicy) -> Self {
        self.stop = stop;
        self
    }

    /// Sets the iteration cap (shorthand for adjusting [`Self::stop`]).
    ///
    /// ```
    /// use lshclust::ClusterSpec;
    ///
    /// assert_eq!(ClusterSpec::new(4).max_iterations(30).stop.max_iterations, 30);
    /// ```
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.stop.max_iterations = n;
        self
    }

    /// Sets the K-Prototypes mixing weight γ.
    ///
    /// ```
    /// use lshclust::ClusterSpec;
    ///
    /// assert_eq!(ClusterSpec::new(4).gamma(0.5).gamma, Some(0.5));
    /// ```
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = Some(gamma);
        self
    }

    /// Sets the streaming options.
    ///
    /// ```
    /// use lshclust::{ClusterSpec, StreamOptions};
    ///
    /// let spec = ClusterSpec::new(0).stream(StreamOptions {
    ///     distance_threshold: Some(3),
    ///     max_clusters: Some(100),
    /// });
    /// assert_eq!(spec.stream.max_clusters, Some(100));
    /// ```
    pub fn stream(mut self, stream: StreamOptions) -> Self {
        self.stream = stream;
        self
    }

    /// Sets the fit discipline ([`Fit::Full`] passes vs [`Fit::MiniBatch`]
    /// sampled steps).
    ///
    /// ```
    /// use lshclust::{ClusterSpec, Fit};
    ///
    /// let spec = ClusterSpec::new(100).fit(Fit::MiniBatch {
    ///     batch_size: 256,
    ///     n_steps: 60,
    ///     refresh_every: 8,
    /// });
    /// assert_eq!(spec.fit.name(), "MiniBatch");
    /// // The heuristic constructor derives the step count from k and batch:
    /// let spec = ClusterSpec::new(100).fit(Fit::mini_batch(100, 256));
    /// assert!(matches!(spec.fit, Fit::MiniBatch { n_steps: 50, .. }));
    /// ```
    pub fn fit(mut self, fit: Fit) -> Self {
        self.fit = fit;
        self
    }

    /// Sets the shard count for partitioned fitting. `0` is documented
    /// shorthand for "unsharded" and clamps to `1`, mirroring
    /// [`Self::threads`].
    ///
    /// ```
    /// use lshclust::ClusterSpec;
    ///
    /// assert_eq!(ClusterSpec::new(4).shards(4).shards, 4);
    /// assert_eq!(ClusterSpec::new(4).shards(0).shards, 1); // 0 ⇒ unsharded
    /// ```
    pub fn shards(mut self, s: usize) -> Self {
        self.shards = s.max(1);
        self
    }

    /// Enables or disables cluster-closure incremental re-assignment
    /// (default on). Results are byte-identical either way; turning it off
    /// forces every item through full shortlist re-scoring each pass.
    ///
    /// ```
    /// use lshclust::ClusterSpec;
    ///
    /// assert!(ClusterSpec::new(4).closures);
    /// assert!(!ClusterSpec::new(4).closures(false).closures);
    /// ```
    pub fn closures(mut self, yes: bool) -> Self {
        self.closures = yes;
        self
    }

    /// Selects interleaved (strided) vs contiguous chunk scheduling for the
    /// Jacobi parallel engine (default contiguous). Byte-identical results
    /// either way — this is a load-balancing knob, swept by `bench_threads`.
    ///
    /// ```
    /// use lshclust::ClusterSpec;
    ///
    /// assert!(!ClusterSpec::new(4).interleaved);
    /// assert!(ClusterSpec::new(4).interleaved(true).interleaved);
    /// ```
    pub fn interleaved(mut self, yes: bool) -> Self {
        self.interleaved = yes;
        self
    }

    /// Builds a [`crate::Clusterer`] that **warm-starts** from a trained
    /// model: instead of re-initialising, the refit resumes from `model`'s
    /// served centroids (the spec's `init` strategy is ignored). The spec's
    /// `k` must equal the model's cluster count and the input modality must
    /// match the model's, or `fit` returns
    /// [`SpecError::WarmStartMismatch`].
    pub fn warm_start(self, model: &crate::FittedModel) -> crate::Clusterer {
        crate::Clusterer::warm_start(self, model)
    }
}

/// Why a spec cannot run on the given input modality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The LSH scheme does not apply to this modality (e.g. SimHash on
    /// categorical data).
    UnsupportedLsh {
        /// Input modality ("categorical", "numeric", "mixed", "streaming").
        modality: &'static str,
        /// The offending scheme's name.
        lsh: &'static str,
    },
    /// The initialisation strategy does not apply to this modality.
    UnsupportedInit {
        /// Input modality.
        modality: &'static str,
        /// The offending strategy's name.
        init: &'static str,
    },
    /// The fit discipline does not apply to this modality (the streaming
    /// inserter is inherently online; `Fit::MiniBatch` would be silently
    /// meaningless there).
    UnsupportedFit {
        /// Input modality.
        modality: &'static str,
        /// The offending discipline's name.
        fit: &'static str,
    },
    /// `k` is zero or exceeds the number of items.
    InvalidK {
        /// Requested cluster count.
        k: usize,
        /// Items available.
        n_items: usize,
    },
    /// A warm-start model is incompatible with the spec or the input
    /// (wrong modality, different `k`, or mismatched shape).
    WarmStartMismatch {
        /// What the spec/input requires.
        expected: String,
        /// What the warm-start model provides.
        got: String,
    },
    /// The spec asks for `shards > 1` in combination with a feature the
    /// sharded coordinator does not cover (exact baselines, mini-batch
    /// fits, streaming, or the `include_self = false` ablation).
    ShardsUnsupported {
        /// The feature that cannot be sharded.
        what: &'static str,
    },
    /// A sharded fit failed at runtime: a worker reported an error, a
    /// worker process could not be spawned, or a reply violated the
    /// partial-update protocol.
    ShardFailure {
        /// The underlying shard/transport error.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnsupportedLsh { modality, lsh } => {
                write!(f, "Lsh::{lsh} does not apply to {modality} data")
            }
            SpecError::UnsupportedInit { modality, init } => {
                write!(f, "Init::{init} does not apply to {modality} data")
            }
            SpecError::UnsupportedFit { modality, fit } => {
                write!(f, "Fit::{fit} does not apply to {modality} data")
            }
            SpecError::InvalidK { k, n_items } => {
                write!(f, "k={k} must be in 1..={n_items}")
            }
            SpecError::WarmStartMismatch { expected, got } => {
                write!(f, "warm start needs {expected}, model provides {got}")
            }
            SpecError::ShardsUnsupported { what } => {
                write!(f, "shards > 1 does not support {what}")
            }
            SpecError::ShardFailure { message } => {
                write!(f, "sharded fit failed: {message}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Maps [`Init`] to the categorical strategies; errors on numeric-only ones.
pub(crate) fn categorical_init(
    init: Init,
    modality: &'static str,
) -> Result<InitMethod, SpecError> {
    match init {
        Init::RandomItems => Ok(InitMethod::RandomItems),
        Init::Huang => Ok(InitMethod::Huang),
        Init::Cao => Ok(InitMethod::Cao),
        Init::PlusPlus => Err(SpecError::UnsupportedInit {
            modality,
            init: init.name(),
        }),
    }
}

/// Maps [`Init`] to the numeric strategies; errors on categorical-only ones.
pub(crate) fn numeric_init(init: Init, modality: &'static str) -> Result<KMeansInit, SpecError> {
    match init {
        Init::RandomItems => Ok(KMeansInit::RandomItems),
        Init::PlusPlus => Ok(KMeansInit::PlusPlus),
        Init::Huang | Init::Cao => Err(SpecError::UnsupportedInit {
            modality,
            init: init.name(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ClusterSpec::new(1000)
            .lsh(Lsh::MinHash { bands: 20, rows: 5 })
            .init(Init::Huang)
            .seed(u64::MAX - 7)
            .query_mode(Query::Precomputed)
            .include_self(false)
            .threads(4)
            .max_iterations(30)
            .gamma(0.125);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn every_lsh_variant_round_trips() {
        for lsh in [
            Lsh::None,
            Lsh::MinHash { bands: 1, rows: 1 },
            Lsh::SimHash { bands: 8, rows: 16 },
            Lsh::Union {
                bands: 20,
                rows: 5,
                sim_bands: 8,
                sim_rows: 16,
            },
        ] {
            let spec = ClusterSpec::new(5).lsh(lsh);
            let json = serde_json::to_string_pretty(&spec).unwrap();
            let back: ClusterSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back.lsh, lsh, "{json}");
        }
    }

    #[test]
    fn stop_policy_round_trips() {
        let stop = StopPolicy {
            max_iterations: 17,
            stop_on_no_moves: false,
            stop_on_cost_increase: true,
        };
        let json = serde_json::to_string(&stop).unwrap();
        let back: StopPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stop);
    }

    #[test]
    fn unknown_lsh_variant_is_rejected() {
        assert!(serde_json::from_str::<Lsh>(r#"{"CosineTree":{"bands":1}}"#).is_err());
        assert!(serde_json::from_str::<Lsh>(r#""None""#).is_ok());
    }

    #[test]
    fn every_spec_error_variant_displays_its_context() {
        // One case per variant; each message must carry the offending
        // pieces so CLI users can act on it.
        let cases = [
            (
                SpecError::UnsupportedLsh {
                    modality: "streaming",
                    lsh: "SimHash",
                },
                vec!["SimHash", "streaming"],
            ),
            (
                SpecError::UnsupportedInit {
                    modality: "numeric",
                    init: "Cao",
                },
                vec!["Cao", "numeric"],
            ),
            (
                SpecError::UnsupportedFit {
                    modality: "streaming",
                    fit: "MiniBatch",
                },
                vec!["MiniBatch", "streaming"],
            ),
            (
                SpecError::InvalidK { k: 51, n_items: 50 },
                vec!["k=51", "50"],
            ),
            (
                SpecError::WarmStartMismatch {
                    expected: "k=10".to_owned(),
                    got: "k=7".to_owned(),
                },
                vec!["warm start", "k=10", "k=7"],
            ),
            (
                SpecError::ShardsUnsupported {
                    what: "Fit::MiniBatch",
                },
                vec!["shards", "Fit::MiniBatch"],
            ),
            (
                SpecError::ShardFailure {
                    message: "shard 1 exited".to_owned(),
                },
                vec!["sharded fit", "shard 1 exited"],
            ),
        ];
        for (err, needles) in cases {
            let text = err.to_string();
            for needle in needles {
                assert!(text.contains(needle), "`{text}` misses `{needle}`");
            }
        }
    }

    #[test]
    fn fit_variants_round_trip() {
        for fit in [
            Fit::Full,
            Fit::MiniBatch {
                batch_size: 512,
                n_steps: 80,
                refresh_every: 4,
            },
        ] {
            let spec = ClusterSpec::new(10).fit(fit);
            let json = serde_json::to_string(&spec).unwrap();
            let back: ClusterSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back.fit, fit, "{json}");
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn spec_json_without_fit_field_defaults_to_full() {
        // Pre-`fit` artifacts (saved model envelopes, committed bench specs)
        // must keep parsing; the field defaults instead of erroring.
        let mut spec = ClusterSpec::new(3).seed(9);
        spec.fit = Fit::MiniBatch {
            batch_size: 1,
            n_steps: 1,
            refresh_every: 1,
        };
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"fit\""));
        let legacy = json.replace(
            ",\"fit\":{\"MiniBatch\":{\"batch_size\":1,\"n_steps\":1,\"refresh_every\":1}}",
            "",
        );
        assert!(!legacy.contains("fit"), "surgery failed: {legacy}");
        let back: ClusterSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.fit, Fit::Full);
        assert_eq!(back.seed, 9);
    }

    #[test]
    fn spec_json_without_shards_field_defaults_to_one() {
        // Same backward-compatibility contract as `fit`: spec JSON written
        // before sharding existed parses as unsharded.
        let spec = ClusterSpec::new(3).seed(9).shards(4);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"shards\":4"));
        let legacy = json.replace(",\"shards\":4", "");
        assert!(!legacy.contains("shards"), "surgery failed: {legacy}");
        let back: ClusterSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.shards, 1);
        assert_eq!(back.seed, 9);

        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shards, 4);
    }

    #[test]
    fn spec_json_without_closures_field_defaults_to_on() {
        // Same backward-compatibility contract as `fit`/`shards`: spec JSON
        // written before closures existed parses with the (byte-identical)
        // incremental engine enabled.
        let spec = ClusterSpec::new(3).seed(9).closures(false);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"closures\":false"));
        let legacy = json.replace(",\"closures\":false", "");
        assert!(!legacy.contains("closures"), "surgery failed: {legacy}");
        let back: ClusterSpec = serde_json::from_str(&legacy).unwrap();
        assert!(back.closures);
        assert_eq!(back.seed, 9);

        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert!(!back.closures);
    }

    #[test]
    fn spec_json_without_interleaved_field_defaults_to_contiguous() {
        // Same backward-compatibility contract as the other late-added
        // fields: spec JSON written before the scheduling knob existed
        // parses with contiguous chunks.
        let spec = ClusterSpec::new(3).seed(9).interleaved(true);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"interleaved\":true"));
        let legacy = json.replace(",\"interleaved\":true", "");
        assert!(!legacy.contains("interleaved"), "surgery failed: {legacy}");
        let back: ClusterSpec = serde_json::from_str(&legacy).unwrap();
        assert!(!back.interleaved);
        assert_eq!(back.seed, 9);

        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert!(back.interleaved);
    }

    #[test]
    fn unknown_fit_variant_is_rejected() {
        assert!(serde_json::from_str::<Fit>(r#""Full""#).is_ok());
        assert!(serde_json::from_str::<Fit>(r#"{"Epoch":{"n":1}}"#).is_err());
    }

    #[test]
    fn init_applicability_is_enforced() {
        assert!(categorical_init(Init::PlusPlus, "categorical").is_err());
        assert!(numeric_init(Init::Cao, "numeric").is_err());
        assert!(categorical_init(Init::Cao, "categorical").is_ok());
        assert!(numeric_init(Init::PlusPlus, "numeric").is_ok());
    }
}
