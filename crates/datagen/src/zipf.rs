//! Zipf-distributed sampling over a finite support.
//!
//! Word frequencies in the synthetic corpus follow a Zipf law, the standard
//! model for natural-language token frequencies. Implemented with a
//! precomputed cumulative table and binary search (`O(log n)` per draw)
//! instead of pulling in `rand_distr` — see the dependency justification in
//! DESIGN.md §3.

use rand::rngs::StdRng;
use rand::RngExt;

/// Sampler for `P(rank = i) ∝ 1 / (i + 1)^exponent`, ranks `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the cumulative table for `n` ranks with the given exponent.
    ///
    /// Panics if `n` is zero or the exponent is not finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(exponent.is_finite(), "exponent must be finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(acc);
        }
        // Normalise so the final entry is exactly 1.0.
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the support is empty (never true — kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        // partition_point returns the first index whose cumulative ≥ u.
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranks_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[1],
            "rank 0 not most frequent: {counts:?}"
        );
        assert!(counts[1] > counts[10], "frequency not decaying");
        // Rough shape: with exponent 1.2 rank 0 should take > 15% of mass.
        assert!(counts[0] > 3000);
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "not uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn singleton_support() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn zero_support_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(20, 1.0);
        let a: Vec<usize> = (0..10)
            .scan(StdRng::seed_from_u64(7), |rng, _| Some(z.sample(rng)))
            .collect();
        let b: Vec<usize> = (0..10)
            .scan(StdRng::seed_from_u64(7), |rng, _| Some(z.sample(rng)))
            .collect();
        assert_eq!(a, b);
    }
}
