//! **Sharded fitting** — the coordinator/worker decomposition of the three
//! accelerated fits.
//!
//! The items (and with them the LSH bucket fills) are partitioned into `S`
//! contiguous ranges by a [`ShardPlan`]. Each shard owns its range's rows
//! plus its *own* [`LshIndex`]/[`SimHashIndex`] built only over its items'
//! band keys, and runs the existing Jacobi assignment locally through the
//! [`SyncShortlistProvider`] seam. The coordinator owns the centroid model
//! and runs the **same** `framework::drive` loop as the unsharded paths;
//! each iteration is one round-trip:
//!
//! ```text
//!   coordinator                         shard workers (× S)
//!   ───────────                         ───────────────────
//!   centroids + merged digests  ──────▶ local Jacobi pass over own items
//!   merged digests ← sum/union ◀──────  assignments + key digest + sketch
//!   centroid update (sketch / replay)
//! ```
//!
//! Two pieces make the sharded fit **byte-identical** to the unsharded fit
//! at equal seeds, for any shard count and any thread count:
//!
//! 1. **Merged key digests.** A shard's local index only sees collisions
//!    among its own items, but the unsharded shortlist is a global set. So
//!    every pass, each worker digests its index — per `(band, key)` bucket:
//!    the item count and the distinct cluster references — and the
//!    coordinator merges the digests into a global `(band, key) → clusters`
//!    map that is redistributed with the next pass. A worker shortlists an
//!    item by looking its own band keys up in the *merged* map, which
//!    yields exactly the global candidate **set**; all three `best_among`
//!    kernels are shortlist-order-insensitive, so set equality suffices.
//! 2. **Coordinator-side updates.** Workers emit per-cluster partial
//!    statistics ([`ModeSketch`] value counts for the categorical modes)
//!    and the coordinator feeds the merged statistics through the same
//!    argmax the serial kernel uses. Numeric means are *replayed* by the
//!    coordinator over the full data instead of summed from partial sums:
//!    f64 addition is non-associative, so partial-sum merging would differ
//!    from the serial sum in the last bits. The replay iterates members in
//!    ascending item order — exactly the serial kernel's order — keeping
//!    the update bit-identical.
//!
//! Hashing stays on the coordinator: MinHash keys depend on the global
//! schema and SimHash keys on the *global* centring mean, so the
//! coordinator hashes every item once (the same parallel kernels the
//! unsharded builds use) and deals each shard its items' key slices.
//! Workers never hash; their local `Dataset`s use an anonymous schema
//! (the distance and mode kernels never consult it).
//!
//! The sharded pass is always the Jacobi pass (shards cannot see each
//! other's intra-pass moves), so a sharded fit reproduces the unsharded
//! fit at `threads > 1` — `lshclust` dispatches accordingly.
//!
//! Everything here is transport-agnostic: [`InProcessTransport`] drives
//! [`ShardWorker`]s in-process, and `lshclust::shard` adds the NDJSON
//! multi-process transport over the same [`ShardRequest`]/[`ShardReply`]
//! types.

use crate::framework::{
    self, ActivitySet, AssignOutcome, CentroidModel, ShortlistCache, ShortlistProvider,
};
use crate::mhkmeans::{KMeansModel, MhKMeansConfig, MhKMeansResult, SimHashIndex};
use crate::mhkmodes::{KModesModel, MhKModesConfig, MhKModesResult};
use crate::mhkprototypes::{
    KPrototypesModel, MhKPrototypesConfig, MhKPrototypesResult, UnionProvider,
};
use crate::parallel::{self, SyncShortlistProvider};
use lshclust_categorical::{ClusterId, Dataset, Schema, ValueId};
use lshclust_kmodes::kmeans::NumericDataset;
use lshclust_kmodes::kprototypes::{MixedDataset, Prototypes};
use lshclust_kmodes::modes::{group_by_cluster, Modes};
use lshclust_minhash::hashfn::{FastMap, FastSet};
use lshclust_minhash::index::{IndexParams, IndexStats, LshIndex, LshIndexBuilder};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::cell::RefCell;
use std::fmt;
use std::ops::Range;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A sharded fit failed: a worker reported an error, a transport broke, or a
/// reply violated the protocol. The message carries the failing shard and
/// cause; `lshclust` surfaces it as `SpecError::ShardFailure`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardError(pub String);

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard: {}", self.0)
    }
}

impl std::error::Error for ShardError {}

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

/// The item partition: `n_items` dealt into `n_shards` contiguous ranges of
/// `ceil(n / S)` items (the last range is shorter; ranges past the items are
/// empty — a plan tolerates more shards than items).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    n_items: usize,
    n_shards: usize,
    chunk: usize,
}

impl ShardPlan {
    /// Plans `n_items` over `n_shards` (clamped to at least 1).
    pub fn new(n_items: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        Self {
            n_items,
            n_shards,
            chunk: n_items.div_ceil(n_shards).max(1),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Item range owned by `shard` (possibly empty).
    pub fn range(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.n_shards, "shard {shard} out of range");
        let lo = (shard * self.chunk).min(self.n_items);
        let hi = (lo + self.chunk).min(self.n_items);
        lo..hi
    }

    /// The largest per-shard item count — the peak memory driver a sharded
    /// deployment sizes against (reported by `bench_shard`).
    pub fn peak_shard_items(&self) -> usize {
        self.chunk.min(self.n_items)
    }
}

// ---------------------------------------------------------------------------
// Key digests: the global shortlist state exchanged between passes
// ---------------------------------------------------------------------------

/// One `(band, key)` bucket's summary: how many items fill it and which
/// distinct clusters they currently reference (sorted, deduplicated).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestEntry {
    /// Band index.
    pub band: u32,
    /// Band key (bucket identity within the band).
    pub key: u64,
    /// Items in the bucket (summed across shards after a merge).
    pub items: u64,
    /// Distinct cluster references of the bucket's items, ascending.
    pub clusters: Vec<ClusterId>,
}

serde::impl_serde_struct!(DigestEntry {
    band,
    key,
    items,
    clusters
});

impl DigestEntry {
    fn of(band: usize, key: u64, members: &[u32], cluster_of: impl Fn(u32) -> ClusterId) -> Self {
        let mut clusters: Vec<ClusterId> = members.iter().map(|&i| cluster_of(i)).collect();
        clusters.sort_unstable();
        clusters.dedup();
        Self {
            band: band as u32,
            key,
            items: members.len() as u64,
            clusters,
        }
    }
}

/// A whole index's bucket summary, canonically sorted by `(band, key)` —
/// what each shard emits after a pass and what the coordinator merges and
/// redistributes. The merged digest of the per-shard indexes describes
/// exactly the buckets of the unsharded index over the same keys.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeyDigest {
    /// Bucket summaries, ascending by `(band, key)`.
    pub entries: Vec<DigestEntry>,
}

serde::impl_serde_struct!(KeyDigest { entries });

impl KeyDigest {
    fn canonical(mut entries: Vec<DigestEntry>) -> Self {
        entries.sort_unstable_by_key(|e| (e.band, e.key));
        Self { entries }
    }

    /// Digests a MinHash index: one entry per filled bucket, with the
    /// current cluster references.
    pub fn of_lsh(index: &LshIndex) -> Self {
        let mut entries = Vec::new();
        index.for_each_bucket(|band, key, members| {
            entries.push(DigestEntry::of(band, key, members, |i| index.cluster_of(i)));
        });
        Self::canonical(entries)
    }

    /// Digests a SimHash index the same way.
    pub fn of_simhash(index: &SimHashIndex) -> Self {
        let mut entries = Vec::new();
        index.for_each_bucket(|band, key, members| {
            entries.push(DigestEntry::of(band, key, members, |i| index.cluster_of(i)));
        });
        Self::canonical(entries)
    }

    /// Merges per-shard digests: equal `(band, key)` entries sum their item
    /// counts and union their cluster sets. Shards partition the items, so
    /// the merge equals the digest of the unsharded index.
    pub fn merged(shards: impl IntoIterator<Item = KeyDigest>) -> Self {
        let mut entries: Vec<DigestEntry> = shards.into_iter().flat_map(|d| d.entries).collect();
        entries.sort_unstable_by_key(|e| (e.band, e.key));
        let mut out: Vec<DigestEntry> = Vec::new();
        for e in entries {
            match out.last_mut() {
                Some(last) if last.band == e.band && last.key == e.key => {
                    last.items += e.items;
                    last.clusters.extend(e.clusters);
                    last.clusters.sort_unstable();
                    last.clusters.dedup();
                }
                _ => out.push(e),
            }
        }
        Self { entries: out }
    }

    /// Reconstructs the unsharded index's bucket statistics from the merged
    /// digest (each entry is one bucket; its `items` is the fill).
    pub fn stats(&self, n_items: usize, n_bands: u32) -> IndexStats {
        let mut total_entries = 0usize;
        let mut largest_bucket = 0usize;
        for e in &self.entries {
            total_entries += e.items as usize;
            largest_bucket = largest_bucket.max(e.items as usize);
        }
        IndexStats {
            n_items,
            n_bands,
            n_buckets: self.entries.len(),
            total_entries,
            largest_bucket,
        }
    }
}

/// A shard-local [`SyncShortlistProvider`] over the **merged global**
/// digest: shortlisting a local item looks its precomputed band keys up in
/// the per-band `(key → clusters)` maps built from the digest, yielding the
/// same candidate set the unsharded index would (the digest's cluster sets
/// are global). `record_assignment` is a no-op — under the Jacobi pass the
/// digest is frozen for the whole pass and rebuilt wholesale afterwards,
/// which is exactly when the unsharded pass's recorded moves become visible.
pub struct DigestShortlistProvider<'a> {
    band_keys: &'a [u64],
    n_bands: usize,
    lookup: Vec<FastMap<u64, Vec<ClusterId>>>,
    seen: FastSet<u32>,
}

impl<'a> DigestShortlistProvider<'a> {
    /// Builds the per-band lookup from a merged digest; `band_keys` are the
    /// shard's local item-major keys (`local_items × n_bands`).
    pub fn new(digest: &KeyDigest, n_bands: usize, band_keys: &'a [u64]) -> Self {
        assert!(
            band_keys.len().is_multiple_of(n_bands.max(1)),
            "band-key buffer is not item-major n_items × bands"
        );
        let mut lookup: Vec<FastMap<u64, Vec<ClusterId>>> =
            (0..n_bands).map(|_| FastMap::default()).collect();
        for e in &digest.entries {
            if let Some(map) = lookup.get_mut(e.band as usize) {
                map.insert(e.key, e.clusters.clone());
            }
        }
        Self {
            band_keys,
            n_bands,
            lookup,
            seen: FastSet::default(),
        }
    }

    fn query(&self, item: u32, seen: &mut FastSet<u32>, out: &mut Vec<ClusterId>) {
        out.clear();
        seen.clear();
        let start = item as usize * self.n_bands;
        for (band, map) in self.lookup.iter().enumerate() {
            let key = self.band_keys[start + band];
            if let Some(clusters) = map.get(&key) {
                for &c in clusters {
                    if seen.insert(c.0) {
                        out.push(c);
                    }
                }
            }
        }
    }
}

impl ShortlistProvider for DigestShortlistProvider<'_> {
    fn shortlist(&mut self, item: u32, out: &mut Vec<ClusterId>) {
        let mut seen = std::mem::take(&mut self.seen);
        self.query(item, &mut seen, out);
        self.seen = seen;
    }

    fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {
        // Frozen for the pass; the worker rebuilds the digest afterwards.
    }
}

impl SyncShortlistProvider for DigestShortlistProvider<'_> {
    type Scratch = FastSet<u32>;

    fn make_scratch(&self) -> FastSet<u32> {
        FastSet::default()
    }

    fn shortlist_into(&self, item: u32, scratch: &mut FastSet<u32>, out: &mut Vec<ClusterId>) {
        self.query(item, scratch, out);
    }
}

// ---------------------------------------------------------------------------
// Mode sketches: partial categorical statistics
// ---------------------------------------------------------------------------

/// One attribute value's occurrence count within a cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueCount {
    /// The raw attribute value (`ValueId` bits; `NOT_PRESENT` counts too,
    /// exactly as the serial mode kernel counts it).
    pub value: u32,
    /// Occurrences among the cluster's members.
    pub count: u64,
}

serde::impl_serde_struct!(ValueCount { value, count });

/// Per-cluster categorical statistics of one shard's assignment state: for
/// every `(cluster, attribute)` cell, the value-occurrence counts (sorted
/// by value), plus the member count per cluster. Merging the shards'VALUE
/// sketches and taking the per-cell argmax reproduces the serial mode
/// update — the argmax (highest count, ties to the smallest value) has a
/// unique winner, so the result is independent of merge order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModeSketch {
    /// Cluster count.
    pub k: usize,
    /// Attribute count.
    pub n_attrs: usize,
    /// Members per cluster (summed across shards after a merge).
    pub members: Vec<u64>,
    /// `k × n_attrs` cells, cluster-major; each cell's counts are ascending
    /// by value.
    pub counts: Vec<Vec<ValueCount>>,
}

serde::impl_serde_struct!(ModeSketch {
    k,
    n_attrs,
    members,
    counts
});

impl ModeSketch {
    /// Counts a shard's local items into per-cluster value statistics.
    pub fn from_assignments(dataset: &Dataset, assignments: &[ClusterId], k: usize) -> Self {
        assert_eq!(assignments.len(), dataset.n_items());
        let n_attrs = dataset.n_attrs();
        let groups = group_by_cluster(assignments, k);
        let mut members = vec![0u64; k];
        let mut counts: Vec<Vec<ValueCount>> = vec![Vec::new(); k * n_attrs];
        for c in 0..k {
            let m = groups.members(c);
            members[c] = m.len() as u64;
            for attr in 0..n_attrs {
                let cell = &mut counts[c * n_attrs + attr];
                for &i in m {
                    let v = dataset.row(i as usize)[attr].0;
                    match cell.iter_mut().find(|vc| vc.value == v) {
                        Some(vc) => vc.count += 1,
                        None => cell.push(ValueCount { value: v, count: 1 }),
                    }
                }
                cell.sort_unstable_by_key(|vc| vc.value);
            }
        }
        Self {
            k,
            n_attrs,
            members,
            counts,
        }
    }

    /// Adds another shard's statistics (merge-join per cell).
    pub fn merge(&mut self, other: &ModeSketch) -> Result<(), ShardError> {
        if self.k != other.k || self.n_attrs != other.n_attrs {
            return Err(ShardError(format!(
                "sketch shape mismatch: {}×{} vs {}×{}",
                self.k, self.n_attrs, other.k, other.n_attrs
            )));
        }
        for (m, &o) in self.members.iter_mut().zip(&other.members) {
            *m += o;
        }
        for (cell, other_cell) in self.counts.iter_mut().zip(&other.counts) {
            let mine = std::mem::take(cell);
            let (mut a, mut b) = (mine.into_iter().peekable(), other_cell.iter().peekable());
            loop {
                match (a.peek(), b.peek()) {
                    (Some(x), Some(y)) if x.value == y.value => {
                        let mut vc = a.next().expect("peeked");
                        vc.count += b.next().expect("peeked").count;
                        cell.push(vc);
                    }
                    (Some(x), Some(y)) if x.value < y.value => cell.push(a.next().expect("peeked")),
                    (Some(_), Some(_)) | (None, Some(_)) => {
                        cell.push(*b.next().expect("peeked"));
                    }
                    (Some(_), None) => cell.push(a.next().expect("peeked")),
                    (None, None) => break,
                }
            }
        }
        Ok(())
    }

    /// Applies the merged statistics as the new modes: per cell, the value
    /// with the highest count (ties to the smallest value — the serial
    /// kernel's exact tie-break); clusters with no members keep their mode.
    pub fn apply(&self, modes: &mut Modes) {
        assert_eq!(modes.k(), self.k, "sketch k disagrees with modes");
        assert_eq!(modes.n_attrs(), self.n_attrs, "sketch arity disagrees");
        let mut mode = Vec::with_capacity(self.n_attrs);
        for c in 0..self.k {
            if self.members[c] == 0 {
                continue;
            }
            mode.clear();
            for attr in 0..self.n_attrs {
                let cell = &self.counts[c * self.n_attrs + attr];
                // Cells are ascending by value, so strict `>` keeps the
                // smallest value among tied counts.
                let mut best = cell[0];
                for &vc in &cell[1..] {
                    if vc.count > best.count {
                        best = vc;
                    }
                }
                mode.push(ValueId(best.value));
            }
            modes.set_mode(ClusterId(c as u32), &mode);
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol types
// ---------------------------------------------------------------------------

/// Per-shard categorical setup: local rows plus precomputed MinHash keys.
#[derive(Clone, Debug, PartialEq)]
pub struct CatShardInit {
    /// Attribute count (local items = `values.len() / n_attrs`).
    pub n_attrs: usize,
    /// Local rows, item-major.
    pub values: Vec<ValueId>,
    /// MinHash index parameters (banding, seed, query mode) — the worker
    /// rebuilds its local index from these plus the keys.
    pub params: IndexParams,
    /// Local items' band keys, item-major (`local_items × bands`), hashed
    /// by the coordinator against the global schema.
    pub band_keys: Vec<u64>,
}

serde::impl_serde_struct!(CatShardInit {
    n_attrs,
    values,
    params,
    band_keys
});

/// Per-shard numeric setup: local rows plus precomputed SimHash keys.
#[derive(Clone, Debug, PartialEq)]
pub struct NumShardInit {
    /// Vector dimensionality.
    pub dim: usize,
    /// Local rows, item-major (`local_items × dim`).
    pub values: Vec<f64>,
    /// SimHash bands.
    pub bands: u32,
    /// SimHash bits per band.
    pub rows: u32,
    /// Hyperplane seed (already salted by the coordinator).
    pub seed: u64,
    /// The **global** centring mean the coordinator hashed against.
    pub mean: Vec<f64>,
    /// Local items' band keys, item-major (`local_items × bands`).
    pub band_keys: Vec<u64>,
}

serde::impl_serde_struct!(NumShardInit {
    dim,
    values,
    bands,
    rows,
    seed,
    mean,
    band_keys
});

/// The `Init` payload: which modality the worker serves (categorical-only,
/// numeric-only, or both = mixed) plus the shared fit parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardInit {
    /// Cluster count.
    pub k: usize,
    /// Worker-local assignment threads.
    pub threads: usize,
    /// K-Prototypes mixing weight (ignored unless mixed).
    pub gamma: f64,
    /// Cluster-closure incremental assignment: workers skip items whose
    /// cached shortlist touches no broadcast-active cluster.
    pub closures: bool,
    /// Categorical side (present for categorical and mixed fits).
    pub categorical: Option<CatShardInit>,
    /// Numeric side (present for numeric and mixed fits).
    pub numeric: Option<NumShardInit>,
}

serde::impl_serde_struct!(ShardInit {
    k,
    threads,
    gamma,
    closures,
    categorical,
    numeric
});

/// The centroids broadcast with every assignment round.
#[derive(Clone, Debug, PartialEq)]
pub enum CentroidSet {
    /// Categorical modes.
    Modes(Modes),
    /// Numeric centroids, row-major `k × dim`.
    Means {
        /// Cluster count.
        k: usize,
        /// Dimensionality.
        dim: usize,
        /// The centroid matrix.
        values: Vec<f64>,
    },
    /// Mixed prototypes.
    Prototypes(Prototypes),
}

// External tagging, serde-style, matching the spec enums.
impl Serialize for CentroidSet {
    fn to_value(&self) -> Value {
        match self {
            CentroidSet::Modes(m) => Value::Object(vec![("Modes".to_owned(), m.to_value())]),
            CentroidSet::Means { k, dim, values } => Value::Object(vec![(
                "Means".to_owned(),
                Value::Object(vec![
                    ("k".to_owned(), k.to_value()),
                    ("dim".to_owned(), dim.to_value()),
                    ("values".to_owned(), values.to_value()),
                ]),
            )]),
            CentroidSet::Prototypes(p) => {
                Value::Object(vec![("Prototypes".to_owned(), p.to_value())])
            }
        }
    }
}

impl Deserialize for CentroidSet {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", "CentroidSet"))?;
        let [(tag, body)] = entries else {
            return Err(SerdeError::expected("single-variant object", "CentroidSet"));
        };
        match tag.as_str() {
            "Modes" => Ok(CentroidSet::Modes(Modes::from_value(body)?)),
            "Means" => {
                let fields = body
                    .as_object()
                    .ok_or_else(|| SerdeError::expected("object", "CentroidSet::Means"))?;
                Ok(CentroidSet::Means {
                    k: serde::field(fields, "k", "CentroidSet::Means")?,
                    dim: serde::field(fields, "dim", "CentroidSet::Means")?,
                    values: serde::field(fields, "values", "CentroidSet::Means")?,
                })
            }
            "Prototypes" => Ok(CentroidSet::Prototypes(Prototypes::from_value(body)?)),
            other => Err(SerdeError(format!("unknown CentroidSet variant `{other}`"))),
        }
    }
}

/// What a shard sends back after an assignment round.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardUpdate {
    /// New assignments of the shard's items, range-local order.
    pub assignments: Vec<ClusterId>,
    /// Items that changed cluster (vs the shard's previous state).
    pub moves: u64,
    /// Summed shortlist sizes over the shard's items.
    pub shortlist_total: u64,
    /// Items whose re-evaluation the cluster-closure active set skipped
    /// (`0` with closures off and on full-assignment rounds).
    pub skipped: u64,
    /// Fresh digests of the shard's indexes (one per index; mixed fits
    /// carry `[minhash, simhash]`).
    pub digests: Vec<KeyDigest>,
    /// Categorical statistics (present when the fit has a categorical side).
    pub sketch: Option<ModeSketch>,
}

serde::impl_serde_struct!(ShardUpdate {
    assignments,
    moves,
    shortlist_total,
    skipped,
    digests,
    sketch
});

/// Coordinator → worker messages (one NDJSON line each on the multi-process
/// transport).
#[derive(Clone, Debug, PartialEq)]
pub enum ShardRequest {
    /// Hand the worker its item range's data and parameters.
    Init(ShardInit),
    /// Full-search-assign every local item against the broadcast centroids
    /// (the setup pass before any index exists), then build the local
    /// index(es) and digest them.
    AssignFull {
        /// The current global centroids.
        centroids: CentroidSet,
    },
    /// One shortlisted Jacobi pass over the local items against the merged
    /// global digests.
    Pass {
        /// The current global centroids.
        centroids: CentroidSet,
        /// Merged digests, one per index (`[minhash]`, `[simhash]`, or
        /// `[minhash, simhash]` for mixed).
        digests: Vec<KeyDigest>,
        /// The **global** active clusters for this pass (ascending ids):
        /// clusters whose centroid changed in the last update, plus both
        /// endpoints of every move in the previous pass. Workers with
        /// closures enabled skip items whose cached shortlist avoids all of
        /// them; ignored otherwise.
        active: Vec<u32>,
    },
    /// Terminate (multi-process workers exit their loop).
    Shutdown,
}

impl Serialize for ShardRequest {
    fn to_value(&self) -> Value {
        match self {
            ShardRequest::Init(init) => Value::Object(vec![("Init".to_owned(), init.to_value())]),
            ShardRequest::AssignFull { centroids } => Value::Object(vec![(
                "AssignFull".to_owned(),
                Value::Object(vec![("centroids".to_owned(), centroids.to_value())]),
            )]),
            ShardRequest::Pass {
                centroids,
                digests,
                active,
            } => Value::Object(vec![(
                "Pass".to_owned(),
                Value::Object(vec![
                    ("centroids".to_owned(), centroids.to_value()),
                    ("digests".to_owned(), digests.to_value()),
                    ("active".to_owned(), active.to_value()),
                ]),
            )]),
            ShardRequest::Shutdown => Value::String("Shutdown".to_owned()),
        }
    }
}

impl Deserialize for ShardRequest {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        if let Some("Shutdown") = v.as_str() {
            return Ok(ShardRequest::Shutdown);
        }
        let entries = v
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", "ShardRequest"))?;
        let [(tag, body)] = entries else {
            return Err(SerdeError::expected(
                "single-variant object",
                "ShardRequest",
            ));
        };
        match tag.as_str() {
            "Init" => Ok(ShardRequest::Init(ShardInit::from_value(body)?)),
            "AssignFull" => {
                let fields = body
                    .as_object()
                    .ok_or_else(|| SerdeError::expected("object", "ShardRequest::AssignFull"))?;
                Ok(ShardRequest::AssignFull {
                    centroids: serde::field(fields, "centroids", "ShardRequest::AssignFull")?,
                })
            }
            "Pass" => {
                let fields = body
                    .as_object()
                    .ok_or_else(|| SerdeError::expected("object", "ShardRequest::Pass"))?;
                Ok(ShardRequest::Pass {
                    centroids: serde::field(fields, "centroids", "ShardRequest::Pass")?,
                    digests: serde::field(fields, "digests", "ShardRequest::Pass")?,
                    active: serde::field(fields, "active", "ShardRequest::Pass")?,
                })
            }
            other => Err(SerdeError(format!(
                "unknown ShardRequest variant `{other}`"
            ))),
        }
    }
}

/// Worker → coordinator messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardReply {
    /// `Init` accepted.
    Ready,
    /// An assignment round's result.
    Update(ShardUpdate),
    /// `Shutdown` acknowledged; the worker is exiting.
    Done,
    /// The worker could not serve the request.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Serialize for ShardReply {
    fn to_value(&self) -> Value {
        match self {
            ShardReply::Ready => Value::String("Ready".to_owned()),
            ShardReply::Update(u) => Value::Object(vec![("Update".to_owned(), u.to_value())]),
            ShardReply::Done => Value::String("Done".to_owned()),
            ShardReply::Error { message } => Value::Object(vec![(
                "Error".to_owned(),
                Value::Object(vec![("message".to_owned(), message.to_value())]),
            )]),
        }
    }
}

impl Deserialize for ShardReply {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v.as_str() {
            Some("Ready") => return Ok(ShardReply::Ready),
            Some("Done") => return Ok(ShardReply::Done),
            Some(other) => return Err(SerdeError(format!("unknown ShardReply variant `{other}`"))),
            None => {}
        }
        let entries = v
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", "ShardReply"))?;
        let [(tag, body)] = entries else {
            return Err(SerdeError::expected("single-variant object", "ShardReply"));
        };
        match tag.as_str() {
            "Update" => Ok(ShardReply::Update(ShardUpdate::from_value(body)?)),
            "Error" => {
                let fields = body
                    .as_object()
                    .ok_or_else(|| SerdeError::expected("object", "ShardReply::Error"))?;
                Ok(ShardReply::Error {
                    message: serde::field(fields, "message", "ShardReply::Error")?,
                })
            }
            other => Err(SerdeError(format!("unknown ShardReply variant `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

struct CatSide {
    dataset: Dataset,
    params: IndexParams,
    band_keys: Vec<u64>,
    index: Option<LshIndex>,
}

impl CatSide {
    fn new(init: CatShardInit) -> Result<Self, ShardError> {
        if init.n_attrs == 0 {
            return Err(ShardError("categorical init with zero attributes".into()));
        }
        if !init.values.len().is_multiple_of(init.n_attrs) {
            return Err(ShardError(format!(
                "categorical values ({}) are not a multiple of n_attrs ({})",
                init.values.len(),
                init.n_attrs
            )));
        }
        let n = init.values.len() / init.n_attrs;
        let n_bands = init.params.banding.bands() as usize;
        if init.band_keys.len() != n * n_bands {
            return Err(ShardError(format!(
                "categorical band keys ({}) disagree with {n} items × {n_bands} bands",
                init.band_keys.len()
            )));
        }
        // An anonymous schema suffices: the distance/mode kernels only read
        // raw `ValueId`s, and hashing already happened on the coordinator.
        let dataset = Dataset::from_parts(Schema::anonymous(init.n_attrs), init.values, None);
        Ok(Self {
            dataset,
            params: init.params,
            band_keys: init.band_keys,
            index: None,
        })
    }

    fn n_bands(&self) -> usize {
        self.params.banding.bands() as usize
    }

    fn build_index(&mut self, assignments: &[ClusterId]) {
        self.index = Some(
            LshIndexBuilder::from_params(self.params)
                .build_from_band_keys(self.band_keys.clone(), assignments),
        );
    }

    fn digest(&self) -> KeyDigest {
        KeyDigest::of_lsh(self.index.as_ref().expect("index built"))
    }
}

struct NumSide {
    data: NumericDataset,
    bands: u32,
    rows: u32,
    seed: u64,
    mean: Vec<f64>,
    band_keys: Vec<u64>,
    index: Option<SimHashIndex>,
}

impl NumSide {
    fn new(init: NumShardInit) -> Result<Self, ShardError> {
        if init.dim == 0 {
            return Err(ShardError("numeric init with zero dimensions".into()));
        }
        if !init.values.len().is_multiple_of(init.dim) {
            return Err(ShardError(format!(
                "numeric values ({}) are not a multiple of dim ({})",
                init.values.len(),
                init.dim
            )));
        }
        let n = init.values.len() / init.dim;
        if init.band_keys.len() != n * init.bands as usize {
            return Err(ShardError(format!(
                "numeric band keys ({}) disagree with {n} items × {} bands",
                init.band_keys.len(),
                init.bands
            )));
        }
        if init.mean.len() != init.dim {
            return Err(ShardError("centring mean disagrees with dim".into()));
        }
        Ok(Self {
            data: NumericDataset::new(init.dim, init.values),
            bands: init.bands,
            rows: init.rows,
            seed: init.seed,
            mean: init.mean,
            band_keys: init.band_keys,
            index: None,
        })
    }

    fn build_index(&mut self, assignments: &[ClusterId]) {
        self.index = Some(SimHashIndex::from_band_keys(
            self.data.dim(),
            self.bands,
            self.rows,
            self.seed,
            self.mean.clone(),
            self.band_keys.clone(),
            assignments,
        ));
    }

    fn digest(&self) -> KeyDigest {
        KeyDigest::of_simhash(self.index.as_ref().expect("index built"))
    }
}

/// One shard's in-process state: its rows, its local index(es), and its
/// current local assignments. Serves [`ShardRequest`]s; the same type backs
/// both [`InProcessTransport`] and the NDJSON worker loop in
/// `lshclust::shard`.
pub struct ShardWorker {
    k: usize,
    threads: usize,
    gamma: f64,
    closures: bool,
    categorical: Option<CatSide>,
    numeric: Option<NumSide>,
    assignments: Vec<ClusterId>,
    /// Per-item cached shortlists for the cluster-closure skip; reset on
    /// every `AssignFull` (the indexes it reads are rebuilt there).
    cache: ShortlistCache,
}

impl ShardWorker {
    /// Builds a worker from an `Init` payload, validating shapes.
    pub fn new(init: ShardInit) -> Result<Self, ShardError> {
        if init.k == 0 {
            return Err(ShardError("k must be positive".into()));
        }
        let categorical = init.categorical.map(CatSide::new).transpose()?;
        let numeric = init.numeric.map(NumSide::new).transpose()?;
        let n = match (&categorical, &numeric) {
            (Some(c), Some(s)) => {
                if c.dataset.n_items() != s.data.n_items() {
                    return Err(ShardError(format!(
                        "categorical items ({}) disagree with numeric items ({})",
                        c.dataset.n_items(),
                        s.data.n_items()
                    )));
                }
                c.dataset.n_items()
            }
            (Some(c), None) => c.dataset.n_items(),
            (None, Some(s)) => s.data.n_items(),
            (None, None) => return Err(ShardError("init carries no modality".into())),
        };
        Ok(Self {
            k: init.k,
            threads: init.threads.max(1),
            gamma: init.gamma,
            closures: init.closures,
            categorical,
            numeric,
            assignments: vec![ClusterId(0); n],
            cache: ShortlistCache::new(n),
        })
    }

    /// Local item count.
    pub fn n_items(&self) -> usize {
        self.assignments.len()
    }

    /// Serves one request. Errors come back as [`ShardReply::Error`] so the
    /// protocol stays uniform across transports.
    pub fn handle(&mut self, request: ShardRequest) -> ShardReply {
        let result = match request {
            ShardRequest::Init(_) => Err(ShardError("worker already initialised".into())),
            ShardRequest::AssignFull { centroids } => self.assign_full(centroids),
            ShardRequest::Pass {
                centroids,
                digests,
                active,
            } => self.pass(centroids, &digests, &active),
            ShardRequest::Shutdown => return ShardReply::Done,
        };
        match result {
            Ok(update) => ShardReply::Update(update),
            Err(e) => ShardReply::Error { message: e.0 },
        }
    }

    fn update(&self, moves: u64, shortlist_total: u64, skipped: u64) -> ShardUpdate {
        let mut digests = Vec::new();
        if let Some(cat) = &self.categorical {
            digests.push(cat.digest());
        }
        if let Some(num) = &self.numeric {
            digests.push(num.digest());
        }
        ShardUpdate {
            assignments: self.assignments.clone(),
            moves,
            shortlist_total,
            skipped,
            digests,
            sketch: self
                .categorical
                .as_ref()
                .map(|cat| ModeSketch::from_assignments(&cat.dataset, &self.assignments, self.k)),
        }
    }

    fn assign_full(&mut self, centroids: CentroidSet) -> Result<ShardUpdate, ShardError> {
        match (&mut self.categorical, &mut self.numeric, centroids) {
            (Some(cat), None, CentroidSet::Modes(modes)) => {
                check_modes(&modes, self.k, cat.dataset.n_attrs())?;
                let model = KModesModel::new(&cat.dataset, modes);
                parallel::assign_full_parallel(&model, &mut self.assignments, self.threads);
                cat.build_index(&self.assignments);
            }
            (None, Some(num), CentroidSet::Means { k, dim, values }) => {
                check_means(k, dim, &values, self.k, num.data.dim())?;
                let model = KMeansModel::new(&num.data, values, k);
                parallel::assign_full_parallel(&model, &mut self.assignments, self.threads);
                num.build_index(&self.assignments);
            }
            (Some(cat), Some(num), CentroidSet::Prototypes(prototypes)) => {
                check_prototypes(&prototypes, self.k, cat.dataset.n_attrs(), num.data.dim())?;
                let mixed = MixedDataset::new(&cat.dataset, &num.data);
                let model = KPrototypesModel::new(&mixed, prototypes, self.gamma);
                parallel::assign_full_parallel(&model, &mut self.assignments, self.threads);
                cat.build_index(&self.assignments);
                num.build_index(&self.assignments);
            }
            _ => return Err(ShardError("centroid set disagrees with modality".into())),
        }
        // The indexes the cached shortlists were read from no longer exist.
        self.cache.invalidate_all();
        Ok(self.update(0, 0, 0))
    }

    fn pass(
        &mut self,
        centroids: CentroidSet,
        digests: &[KeyDigest],
        active: &[u32],
    ) -> Result<ShardUpdate, ShardError> {
        // With closures on, items whose cached shortlist avoids every
        // broadcast-active cluster keep their assignment without a digest
        // query — the same skip rule, against the same global activity, as
        // the unsharded engine, so the pass stays byte-identical. The cache
        // lives next to the per-shard indexes: shard-local items, global
        // cluster ids.
        let closures = self.closures;
        let activity = ActivitySet::from_clusters(self.k, active);
        let cache = &mut self.cache;
        let (new_assignments, shortlist_total, skipped) =
            match (&self.categorical, &self.numeric, centroids) {
                (Some(cat), None, CentroidSet::Modes(modes)) => {
                    check_modes(&modes, self.k, cat.dataset.n_attrs())?;
                    let [digest] = digests else {
                        return Err(ShardError("categorical pass expects one digest".into()));
                    };
                    if cat.index.is_none() {
                        return Err(ShardError("pass before assign_full".into()));
                    }
                    let provider =
                        DigestShortlistProvider::new(digest, cat.n_bands(), &cat.band_keys);
                    let model = KModesModel::new(&cat.dataset, modes);
                    if closures {
                        parallel::jacobi_assign_closures(
                            &model,
                            &provider,
                            &self.assignments,
                            &activity,
                            cache,
                            self.threads,
                            true,
                        )
                    } else {
                        let (a, total) = parallel::jacobi_assign_interleaved(
                            &model,
                            &provider,
                            &self.assignments,
                            self.threads,
                        );
                        (a, total, 0)
                    }
                }
                (None, Some(num), CentroidSet::Means { k, dim, values }) => {
                    check_means(k, dim, &values, self.k, num.data.dim())?;
                    let [digest] = digests else {
                        return Err(ShardError("numeric pass expects one digest".into()));
                    };
                    if num.index.is_none() {
                        return Err(ShardError("pass before assign_full".into()));
                    }
                    let provider =
                        DigestShortlistProvider::new(digest, num.bands as usize, &num.band_keys);
                    let model = KMeansModel::new(&num.data, values, k);
                    if closures {
                        parallel::jacobi_assign_closures(
                            &model,
                            &provider,
                            &self.assignments,
                            &activity,
                            cache,
                            self.threads,
                            true,
                        )
                    } else {
                        let (a, total) = parallel::jacobi_assign_interleaved(
                            &model,
                            &provider,
                            &self.assignments,
                            self.threads,
                        );
                        (a, total, 0)
                    }
                }
                (Some(cat), Some(num), CentroidSet::Prototypes(prototypes)) => {
                    check_prototypes(&prototypes, self.k, cat.dataset.n_attrs(), num.data.dim())?;
                    let [cat_digest, sim_digest] = digests else {
                        return Err(ShardError("mixed pass expects two digests".into()));
                    };
                    if cat.index.is_none() || num.index.is_none() {
                        return Err(ShardError("pass before assign_full".into()));
                    }
                    // MinHash first, SimHash second — the unsharded union order.
                    let provider = UnionProvider::new(
                        DigestShortlistProvider::new(cat_digest, cat.n_bands(), &cat.band_keys),
                        DigestShortlistProvider::new(
                            sim_digest,
                            num.bands as usize,
                            &num.band_keys,
                        ),
                    );
                    let mixed = MixedDataset::new(&cat.dataset, &num.data);
                    let model = KPrototypesModel::new(&mixed, prototypes, self.gamma);
                    if closures {
                        parallel::jacobi_assign_closures(
                            &model,
                            &provider,
                            &self.assignments,
                            &activity,
                            cache,
                            self.threads,
                            true,
                        )
                    } else {
                        let (a, total) = parallel::jacobi_assign_interleaved(
                            &model,
                            &provider,
                            &self.assignments,
                            self.threads,
                        );
                        (a, total, 0)
                    }
                }
                _ => return Err(ShardError("centroid set disagrees with modality".into())),
            };
        let moves = self
            .assignments
            .iter()
            .zip(&new_assignments)
            .filter(|(old, new)| old != new)
            .count() as u64;
        self.assignments = new_assignments;
        if let Some(cat) = &mut self.categorical {
            cat.index
                .as_mut()
                .expect("checked above")
                .set_all_clusters(&self.assignments);
        }
        if let Some(num) = &mut self.numeric {
            num.index
                .as_mut()
                .expect("checked above")
                .set_all_clusters(&self.assignments);
        }
        Ok(self.update(moves, shortlist_total as u64, skipped as u64))
    }
}

fn check_modes(modes: &Modes, k: usize, n_attrs: usize) -> Result<(), ShardError> {
    if modes.k() != k || modes.n_attrs() != n_attrs {
        return Err(ShardError(format!(
            "modes {}×{} disagree with shard {}×{}",
            modes.k(),
            modes.n_attrs(),
            k,
            n_attrs
        )));
    }
    Ok(())
}

fn check_means(
    k: usize,
    dim: usize,
    values: &[f64],
    want_k: usize,
    want_dim: usize,
) -> Result<(), ShardError> {
    if k != want_k || dim != want_dim || values.len() != k * dim {
        return Err(ShardError(format!(
            "means {k}×{dim} ({} values) disagree with shard {want_k}×{want_dim}",
            values.len()
        )));
    }
    Ok(())
}

fn check_prototypes(
    prototypes: &Prototypes,
    k: usize,
    n_attrs: usize,
    dim: usize,
) -> Result<(), ShardError> {
    if prototypes.k() != k || prototypes.modes.n_attrs() != n_attrs || prototypes.dim() != dim {
        return Err(ShardError("prototypes disagree with shard shape".into()));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

/// How the coordinator reaches its shards: one request per shard out, one
/// reply per shard back, in shard order. `lshclust::shard` implements this
/// over child processes speaking NDJSON; [`InProcessTransport`] implements
/// it directly over [`ShardWorker`]s.
pub trait ShardTransport {
    /// Number of shards this transport serves.
    fn n_shards(&self) -> usize;

    /// Delivers `requests[i]` to shard `i` and collects the replies in
    /// shard order. `requests.len()` must equal [`Self::n_shards`].
    fn roundtrip(&mut self, requests: Vec<ShardRequest>) -> Result<Vec<ShardReply>, ShardError>;
}

/// Shards as plain structs in the coordinator's process — no serialization,
/// no processes; the default transport behind `ClusterSpec::shards(s)`.
pub struct InProcessTransport {
    workers: Vec<Option<ShardWorker>>,
}

impl InProcessTransport {
    /// A transport with `n_shards` uninitialised worker slots.
    pub fn new(n_shards: usize) -> Self {
        Self {
            workers: (0..n_shards.max(1)).map(|_| None).collect(),
        }
    }
}

impl ShardTransport for InProcessTransport {
    fn n_shards(&self) -> usize {
        self.workers.len()
    }

    fn roundtrip(&mut self, requests: Vec<ShardRequest>) -> Result<Vec<ShardReply>, ShardError> {
        if requests.len() != self.workers.len() {
            return Err(ShardError(format!(
                "{} requests for {} shards",
                requests.len(),
                self.workers.len()
            )));
        }
        Ok(requests
            .into_iter()
            .zip(&mut self.workers)
            .map(|(request, slot)| match request {
                ShardRequest::Init(init) => match ShardWorker::new(init) {
                    Ok(worker) => {
                        *slot = Some(worker);
                        ShardReply::Ready
                    }
                    Err(e) => ShardReply::Error { message: e.0 },
                },
                other => match slot {
                    Some(worker) => worker.handle(other),
                    None => ShardReply::Error {
                        message: "request before init".to_owned(),
                    },
                },
            })
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Coordinators
// ---------------------------------------------------------------------------

struct DriveState {
    digests: Vec<KeyDigest>,
    sketch: Option<ModeSketch>,
    error: Option<ShardError>,
}

fn expect_ready(replies: Vec<ShardReply>) -> Result<(), ShardError> {
    for (shard, reply) in replies.into_iter().enumerate() {
        match reply {
            ShardReply::Ready => {}
            ShardReply::Error { message } => {
                return Err(ShardError(format!("shard {shard} init failed: {message}")))
            }
            other => {
                return Err(ShardError(format!(
                    "shard {shard} replied {other:?} to init"
                )))
            }
        }
    }
    Ok(())
}

fn expect_updates(
    replies: Vec<ShardReply>,
    n_digests: usize,
) -> Result<Vec<ShardUpdate>, ShardError> {
    replies
        .into_iter()
        .enumerate()
        .map(|(shard, reply)| match reply {
            ShardReply::Update(u) if u.digests.len() == n_digests => Ok(u),
            ShardReply::Update(u) => Err(ShardError(format!(
                "shard {shard} returned {} digests, expected {n_digests}",
                u.digests.len()
            ))),
            ShardReply::Error { message } => {
                Err(ShardError(format!("shard {shard} failed: {message}")))
            }
            other => Err(ShardError(format!(
                "shard {shard} replied {other:?} to an assignment round"
            ))),
        })
        .collect()
}

fn splice_updates(
    plan: &ShardPlan,
    updates: &[ShardUpdate],
    assignments: &mut [ClusterId],
) -> Result<AssignOutcome, ShardError> {
    let mut moves = 0usize;
    let mut shortlist_total = 0usize;
    let mut skipped = 0usize;
    for (shard, u) in updates.iter().enumerate() {
        let range = plan.range(shard);
        if u.assignments.len() != range.len() {
            return Err(ShardError(format!(
                "shard {shard} returned {} assignments for {} items",
                u.assignments.len(),
                range.len()
            )));
        }
        assignments[range].copy_from_slice(&u.assignments);
        moves += u.moves as usize;
        shortlist_total += u.shortlist_total as usize;
        skipped += u.skipped as usize;
    }
    Ok(AssignOutcome {
        moves,
        shortlist_total,
        skipped,
    })
}

fn merged_digests(updates: &[ShardUpdate], n_digests: usize) -> Vec<KeyDigest> {
    (0..n_digests)
        .map(|slot| KeyDigest::merged(updates.iter().map(|u| u.digests[slot].clone())))
        .collect()
}

fn merged_sketch(updates: &[ShardUpdate]) -> Result<ModeSketch, ShardError> {
    let mut iter = updates.iter();
    let mut acc = iter
        .next()
        .and_then(|u| u.sketch.clone())
        .ok_or_else(|| ShardError("categorical update carries no sketch".into()))?;
    for u in iter {
        let sketch = u
            .sketch
            .as_ref()
            .ok_or_else(|| ShardError("categorical update carries no sketch".into()))?;
        acc.merge(sketch)?;
    }
    Ok(acc)
}

fn broadcast(n: usize, make: impl Fn() -> ShardRequest) -> Vec<ShardRequest> {
    (0..n).map(|_| make()).collect()
}

/// One assignment round through the transport: broadcast, validate, splice,
/// and merge — shared by the setup round and every drive pass.
fn exchange(
    transport: &mut dyn ShardTransport,
    plan: &ShardPlan,
    requests: Vec<ShardRequest>,
    n_digests: usize,
    want_sketch: bool,
    assignments: &mut [ClusterId],
) -> Result<(AssignOutcome, Vec<KeyDigest>, Option<ModeSketch>), ShardError> {
    let updates = expect_updates(transport.roundtrip(requests)?, n_digests)?;
    let outcome = splice_updates(plan, &updates, assignments)?;
    let digests = merged_digests(&updates, n_digests);
    let sketch = want_sketch.then(|| merged_sketch(&updates)).transpose()?;
    Ok((outcome, digests, sketch))
}

/// Sharded MH-K-Modes from explicit initial modes — byte-identical to
/// [`crate::mhkmodes::MhKModes::fit_from`] at `threads > 1` with the same
/// config and modes, for any shard count. `index_stats` is reconstructed
/// from the merged initial digest and equals the unsharded index's.
pub fn shard_mh_kmodes_from(
    dataset: &Dataset,
    cfg: &MhKModesConfig,
    modes: Modes,
    setup_start: Instant,
    transport: &mut dyn ShardTransport,
) -> Result<MhKModesResult, ShardError> {
    assert_eq!(modes.k(), cfg.k, "initial modes disagree with configured k");
    let n = dataset.n_items();
    let plan = ShardPlan::new(n, transport.n_shards());
    let builder = LshIndexBuilder::new(cfg.banding)
        .seed(cfg.seed ^ 0x4d48_4b4d) // the unsharded fit's decorrelation salt
        .mode(cfg.query_mode);
    let params = builder.params();
    let n_bands = cfg.banding.bands() as usize;
    let band_keys = parallel::hash_band_keys_parallel(&builder, dataset, cfg.threads);

    let inits = (0..plan.n_shards())
        .map(|shard| {
            let range = plan.range(shard);
            ShardRequest::Init(ShardInit {
                k: cfg.k,
                threads: cfg.threads,
                gamma: 0.0,
                closures: cfg.closures,
                categorical: Some(CatShardInit {
                    n_attrs: dataset.n_attrs(),
                    values: flatten_cat_rows(dataset, range.clone()),
                    params,
                    band_keys: band_keys[range.start * n_bands..range.end * n_bands].to_vec(),
                }),
                numeric: None,
            })
        })
        .collect();
    expect_ready(transport.roundtrip(inits)?)?;

    let mut model = KModesModel::new(dataset, modes);
    let mut assignments = vec![ClusterId(0); n];
    // Setup: distributed full assignment against the initial modes, local
    // index builds, then the coordinator-side refresh — mirroring the
    // unsharded fit's setup phase step for step.
    let requests = broadcast(plan.n_shards(), || ShardRequest::AssignFull {
        centroids: CentroidSet::Modes(model.modes().clone()),
    });
    let (_, digests, sketch) = exchange(transport, &plan, requests, 1, true, &mut assignments)?;
    sketch.expect("requested").apply(model.modes_mut());
    let index_stats = digests[0].stats(n, cfg.banding.bands());
    let setup = setup_start.elapsed();

    let state = RefCell::new(DriveState {
        digests,
        sketch: None,
        error: None,
    });
    let state = &state;
    let run = framework::drive(
        &mut model,
        assignments,
        setup,
        &cfg.stop,
        |model, assignments, activity| {
            let mut st = state.borrow_mut();
            if st.error.is_some() {
                return AssignOutcome::default();
            }
            let requests = broadcast(plan.n_shards(), || ShardRequest::Pass {
                centroids: CentroidSet::Modes(model.modes().clone()),
                digests: st.digests.clone(),
                active: activity.to_clusters(),
            });
            match exchange(transport, &plan, requests, 1, true, assignments) {
                Ok((outcome, digests, sketch)) => {
                    st.digests = digests;
                    st.sketch = sketch;
                    outcome
                }
                Err(e) => {
                    st.error = Some(e);
                    AssignOutcome::default()
                }
            }
        },
        |model, _assignments| {
            // The merged sketch replays the exact same mode update the
            // unsharded fit computes, so diffing old vs new modes yields the
            // same ActivitySet the unsharded `update_centroids` reports.
            if let Some(sketch) = state.borrow_mut().sketch.take() {
                let old = model.modes().clone();
                sketch.apply(model.modes_mut());
                let mut activity = ActivitySet::none(old.k());
                for c in 0..old.k() {
                    if model.modes().mode(c) != old.mode(c) {
                        activity.mark(ClusterId(c as u32));
                    }
                }
                activity
            } else {
                ActivitySet::none(model.k())
            }
        },
    );
    if let Some(e) = state.borrow_mut().error.take() {
        return Err(e);
    }
    Ok(MhKModesResult {
        assignments: run.assignments,
        modes: model.into_modes(),
        summary: run.summary,
        index_stats,
    })
}

/// Sharded MH-K-Means from explicit initial centroids — byte-identical to
/// [`crate::mhkmeans::mh_kmeans_from`] at `threads > 1`. Centroid means are
/// replayed by the coordinator over the full data (f64 addition is
/// non-associative; merging per-shard partial sums would drift in the last
/// bits), which is the same kernel the unsharded fit runs.
pub fn shard_mh_kmeans_from(
    data: &NumericDataset,
    cfg: &MhKMeansConfig,
    centroids: Vec<f64>,
    setup_start: Instant,
    transport: &mut dyn ShardTransport,
) -> Result<MhKMeansResult, ShardError> {
    let n = data.n_items();
    let dim = data.dim();
    let plan = ShardPlan::new(n, transport.n_shards());
    let n_bands = cfg.bands as usize;
    let (band_keys, mean) =
        SimHashIndex::hash_band_keys(data, cfg.bands, cfg.rows, cfg.seed, cfg.threads);

    let inits = (0..plan.n_shards())
        .map(|shard| {
            let range = plan.range(shard);
            ShardRequest::Init(ShardInit {
                k: cfg.k,
                threads: cfg.threads,
                gamma: 0.0,
                closures: cfg.closures,
                categorical: None,
                numeric: Some(NumShardInit {
                    dim,
                    values: flatten_num_rows(data, range.clone()),
                    bands: cfg.bands,
                    rows: cfg.rows,
                    seed: cfg.seed,
                    mean: mean.clone(),
                    band_keys: band_keys[range.start * n_bands..range.end * n_bands].to_vec(),
                }),
            })
        })
        .collect();
    expect_ready(transport.roundtrip(inits)?)?;

    let mut model = KMeansModel::new(data, centroids, cfg.k);
    let mut assignments = vec![ClusterId(0); n];
    let requests = broadcast(plan.n_shards(), || ShardRequest::AssignFull {
        centroids: means_of(&model, dim),
    });
    let (_, digests, _) = exchange(transport, &plan, requests, 1, false, &mut assignments)?;
    model.update_centroids_parallel(&assignments, cfg.threads);
    let setup = setup_start.elapsed();

    let state = RefCell::new(DriveState {
        digests,
        sketch: None,
        error: None,
    });
    let state = &state;
    let threads = cfg.threads;
    let run = framework::drive(
        &mut model,
        assignments,
        setup,
        &cfg.stop,
        |model, assignments, activity| {
            let mut st = state.borrow_mut();
            if st.error.is_some() {
                return AssignOutcome::default();
            }
            let requests = broadcast(plan.n_shards(), || ShardRequest::Pass {
                centroids: means_of(model, dim),
                digests: st.digests.clone(),
                active: activity.to_clusters(),
            });
            match exchange(transport, &plan, requests, 1, false, assignments) {
                Ok((outcome, digests, _)) => {
                    st.digests = digests;
                    outcome
                }
                Err(e) => {
                    st.error = Some(e);
                    AssignOutcome::default()
                }
            }
        },
        |model, assignments| model.update_centroids_parallel(assignments, threads),
    );
    if let Some(e) = state.borrow_mut().error.take() {
        return Err(e);
    }
    Ok(MhKMeansResult {
        assignments: run.assignments,
        centroids: model.centroids().to_vec(),
        summary: run.summary,
    })
}

/// Sharded MH-K-Prototypes from explicit initial prototypes —
/// byte-identical to [`crate::mhkprototypes::mh_kprototypes_from`] at
/// `threads > 1`. Modes come from the merged [`ModeSketch`]; means are
/// replayed by the coordinator (same f64 rationale as the numeric fit).
pub fn shard_mh_kprototypes_from(
    data: &MixedDataset<'_>,
    cfg: &MhKPrototypesConfig,
    prototypes: Prototypes,
    setup_start: Instant,
    transport: &mut dyn ShardTransport,
) -> Result<MhKPrototypesResult, ShardError> {
    assert_eq!(prototypes.k(), cfg.k, "initial prototypes disagree with k");
    let n = data.n_items();
    let dim = data.numeric.dim();
    let plan = ShardPlan::new(n, transport.n_shards());
    // The unsharded fit's per-index decorrelation salts.
    let builder = LshIndexBuilder::new(cfg.banding).seed(cfg.seed ^ 0x6d68_6b70);
    let params = builder.params();
    let cat_bands = cfg.banding.bands() as usize;
    let cat_keys = parallel::hash_band_keys_parallel(&builder, data.categorical, cfg.threads);
    let sim_seed = cfg.seed ^ 0x7368_6b70;
    let (sim_keys, mean) = SimHashIndex::hash_band_keys(
        data.numeric,
        cfg.sim_bands,
        cfg.sim_rows,
        sim_seed,
        cfg.threads,
    );
    let sim_bands = cfg.sim_bands as usize;

    let inits = (0..plan.n_shards())
        .map(|shard| {
            let range = plan.range(shard);
            ShardRequest::Init(ShardInit {
                k: cfg.k,
                threads: cfg.threads,
                gamma: cfg.gamma,
                closures: cfg.closures,
                categorical: Some(CatShardInit {
                    n_attrs: data.categorical.n_attrs(),
                    values: flatten_cat_rows(data.categorical, range.clone()),
                    params,
                    band_keys: cat_keys[range.start * cat_bands..range.end * cat_bands].to_vec(),
                }),
                numeric: Some(NumShardInit {
                    dim,
                    values: flatten_num_rows(data.numeric, range.clone()),
                    bands: cfg.sim_bands,
                    rows: cfg.sim_rows,
                    seed: sim_seed,
                    mean: mean.clone(),
                    band_keys: sim_keys[range.start * sim_bands..range.end * sim_bands].to_vec(),
                }),
            })
        })
        .collect();
    expect_ready(transport.roundtrip(inits)?)?;

    let mut model = KPrototypesModel::new(data, prototypes, cfg.gamma);
    let mut assignments = vec![ClusterId(0); n];
    let requests = broadcast(plan.n_shards(), || ShardRequest::AssignFull {
        centroids: CentroidSet::Prototypes(model.prototypes().clone()),
    });
    let (_, digests, sketch) = exchange(transport, &plan, requests, 2, true, &mut assignments)?;
    apply_prototype_update(&mut model, &sketch.expect("requested"), &assignments, dim);
    let setup = setup_start.elapsed();

    let state = RefCell::new(DriveState {
        digests,
        sketch: None,
        error: None,
    });
    let state = &state;
    let run = framework::drive(
        &mut model,
        assignments,
        setup,
        &cfg.stop,
        |model, assignments, activity| {
            let mut st = state.borrow_mut();
            if st.error.is_some() {
                return AssignOutcome::default();
            }
            let requests = broadcast(plan.n_shards(), || ShardRequest::Pass {
                centroids: CentroidSet::Prototypes(model.prototypes().clone()),
                digests: st.digests.clone(),
                active: activity.to_clusters(),
            });
            match exchange(transport, &plan, requests, 2, true, assignments) {
                Ok((outcome, digests, sketch)) => {
                    st.digests = digests;
                    st.sketch = sketch;
                    outcome
                }
                Err(e) => {
                    st.error = Some(e);
                    AssignOutcome::default()
                }
            }
        },
        |model, assignments| {
            if let Some(sketch) = state.borrow_mut().sketch.take() {
                apply_prototype_update(model, &sketch, assignments, dim)
            } else {
                ActivitySet::none(model.k())
            }
        },
    );
    if let Some(e) = state.borrow_mut().error.take() {
        return Err(e);
    }
    Ok(MhKPrototypesResult {
        assignments: run.assignments,
        prototypes: model.into_prototypes(),
        summary: run.summary,
    })
}

fn means_of(model: &KMeansModel<'_>, dim: usize) -> CentroidSet {
    CentroidSet::Means {
        k: model.k(),
        dim,
        values: model.centroids().to_vec(),
    }
}

/// The mixed centroid update: modes from the merged sketch, means replayed
/// over the full data in ascending member order — together bit-identical to
/// `KPrototypesModel::update_centroids_parallel`. Returns the clusters whose
/// prototype (mode or mean) actually changed, matching the unsharded
/// update's ActivitySet exactly since both compare against the same old and
/// compute the same new values.
fn apply_prototype_update(
    model: &mut KPrototypesModel<'_>,
    sketch: &ModeSketch,
    assignments: &[ClusterId],
    dim: usize,
) -> ActivitySet {
    let data = model.data_ref();
    let groups = group_by_cluster(assignments, model.k());
    let k = model.k();
    let prototypes = model.prototypes_mut();
    let old = prototypes.clone();
    sketch.apply(&mut prototypes.modes);
    let mut mean = vec![0.0f64; dim];
    for c in 0..k {
        let members = groups.members(c);
        if members.is_empty() {
            continue; // keep previous mean
        }
        mean.iter_mut().for_each(|s| *s = 0.0);
        for &i in members {
            for (s, &x) in mean.iter_mut().zip(data.numeric.row(i as usize)) {
                *s += x;
            }
        }
        for s in &mut mean {
            *s /= members.len() as f64;
        }
        prototypes.means[c * dim..(c + 1) * dim].copy_from_slice(&mean);
    }
    let mut activity = ActivitySet::none(k);
    for c in 0..k {
        if prototypes.modes.mode(c) != old.modes.mode(c)
            || prototypes.means[c * dim..(c + 1) * dim] != old.means[c * dim..(c + 1) * dim]
        {
            activity.mark(ClusterId(c as u32));
        }
    }
    activity
}

fn flatten_cat_rows(dataset: &Dataset, range: Range<usize>) -> Vec<ValueId> {
    let mut values = Vec::with_capacity(range.len() * dataset.n_attrs());
    for item in range {
        values.extend_from_slice(dataset.row(item));
    }
    values
}

fn flatten_num_rows(data: &NumericDataset, range: Range<usize>) -> Vec<f64> {
    let mut values = Vec::with_capacity(range.len() * data.dim());
    for item in range {
        values.extend_from_slice(data.row(item));
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mhkmodes::{MhKModes, MinHashProvider};
    use lshclust_categorical::DatasetBuilder;
    use lshclust_kmodes::init::{initial_modes, InitMethod};
    use lshclust_minhash::Banding;

    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == n_attrs - 1 {
                            format!("g{g}i{i}")
                        } else {
                            format!("g{g}a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    fn blob_numeric(groups: usize, per_group: usize) -> NumericDataset {
        let mut data = Vec::new();
        for g in 0..groups {
            let angle = g as f64 / groups as f64 * std::f64::consts::TAU;
            let (cx, cy) = (10.0 * angle.cos(), 10.0 * angle.sin());
            for i in 0..per_group {
                data.extend_from_slice(&[
                    cx + (i as f64 * 0.37).sin() * 0.3,
                    cy + (i as f64 * 0.71).cos() * 0.3,
                ]);
            }
        }
        NumericDataset::new(2, data)
    }

    #[test]
    fn plan_covers_all_items_without_overlap() {
        for (n, s) in [(10, 1), (10, 3), (10, 4), (3, 8), (0, 2), (1, 1)] {
            let plan = ShardPlan::new(n, s);
            let mut seen = Vec::new();
            for shard in 0..plan.n_shards() {
                seen.extend(plan.range(shard));
            }
            assert_eq!(seen, (0..n).collect::<Vec<_>>(), "n={n} s={s}");
            assert!(plan.peak_shard_items() <= n.max(1));
            for shard in 0..plan.n_shards() {
                assert!(plan.range(shard).len() <= plan.peak_shard_items());
            }
        }
    }

    #[test]
    fn merged_shard_digests_match_the_unsharded_index() {
        let dataset = blob_dataset(3, 7, 4);
        let n = dataset.n_items();
        let builder = LshIndexBuilder::new(Banding::new(8, 2)).seed(17);
        let keys = parallel::hash_band_keys_parallel(&builder, &dataset, 1);
        let assignments: Vec<ClusterId> = (0..n).map(|i| ClusterId((i % 3) as u32)).collect();
        let global = builder.build_from_band_keys(keys.clone(), &assignments);

        let plan = ShardPlan::new(n, 3);
        let n_bands = 8usize;
        let shard_digests: Vec<KeyDigest> = (0..plan.n_shards())
            .map(|shard| {
                let r = plan.range(shard);
                let local = builder.build_from_band_keys(
                    keys[r.start * n_bands..r.end * n_bands].to_vec(),
                    &assignments[r],
                );
                KeyDigest::of_lsh(&local)
            })
            .collect();
        let merged = KeyDigest::merged(shard_digests);
        assert_eq!(merged, KeyDigest::of_lsh(&global));
        assert_eq!(merged.stats(n, 8), global.stats());

        // The digest provider's candidate set equals the index shortlist's.
        let provider = DigestShortlistProvider::new(&merged, n_bands, &keys);
        let mut index_provider = MinHashProvider::new(global, 3, true);
        let mut scratch = provider.make_scratch();
        let (mut got, mut want) = (Vec::new(), Vec::new());
        for item in 0..n as u32 {
            provider.shortlist_into(item, &mut scratch, &mut got);
            index_provider.shortlist(item, &mut want);
            got.sort_unstable();
            want.sort_unstable();
            want.dedup();
            assert_eq!(got, want, "item {item}");
        }
    }

    #[test]
    fn merged_sketch_reproduces_the_serial_mode_update() {
        let dataset = blob_dataset(4, 6, 3);
        let n = dataset.n_items();
        let k = 4;
        let assignments: Vec<ClusterId> = (0..n).map(|i| ClusterId(((i * 7) % k) as u32)).collect();

        let plan = ShardPlan::new(n, 3);
        let mut merged: Option<ModeSketch> = None;
        for shard in 0..plan.n_shards() {
            let r = plan.range(shard);
            let local = Dataset::from_parts(
                Schema::anonymous(dataset.n_attrs()),
                flatten_cat_rows(&dataset, r.clone()),
                None,
            );
            let sketch = ModeSketch::from_assignments(&local, &assignments[r], k);
            match &mut merged {
                Some(acc) => acc.merge(&sketch).unwrap(),
                None => merged = Some(sketch),
            }
        }
        let merged = merged.unwrap();

        let initial = initial_modes(&dataset, k, InitMethod::RandomItems, 5);
        let mut from_sketch = initial.clone();
        merged.apply(&mut from_sketch);
        let mut model = KModesModel::new(&dataset, initial);
        model.update_centroids(&assignments);
        assert_eq!(from_sketch.values(), model.modes().values());
    }

    #[test]
    fn in_process_sharded_kmodes_is_byte_identical() {
        let dataset = blob_dataset(3, 10, 4);
        let cfg = MhKModesConfig::new(3, Banding::new(8, 2))
            .seed(11)
            .threads(2);
        let start = Instant::now();
        let modes = initial_modes(&dataset, cfg.k, cfg.init, cfg.seed);
        let unsharded = MhKModes::new(cfg.clone()).fit_from(&dataset, modes.clone(), start);
        for shards in [1usize, 2, 4, 7] {
            let mut transport = InProcessTransport::new(shards);
            let sharded = shard_mh_kmodes_from(
                &dataset,
                &cfg,
                modes.clone(),
                Instant::now(),
                &mut transport,
            )
            .unwrap();
            assert_eq!(
                sharded.assignments, unsharded.assignments,
                "{shards} shards"
            );
            assert_eq!(
                sharded.modes.values(),
                unsharded.modes.values(),
                "{shards} shards"
            );
            assert_eq!(
                sharded.index_stats, unsharded.index_stats,
                "{shards} shards"
            );
            assert_eq!(
                sharded.summary.iterations.len(),
                unsharded.summary.iterations.len()
            );
            for (a, b) in sharded
                .summary
                .iterations
                .iter()
                .zip(&unsharded.summary.iterations)
            {
                assert_eq!((a.moves, a.cost), (b.moves, b.cost));
                assert_eq!(a.avg_candidates, b.avg_candidates);
            }
        }
    }

    #[test]
    fn in_process_sharded_kmeans_is_byte_identical() {
        use lshclust_kmodes::kmeans::{kmeans_initial_centroids, KMeansInit};
        let data = blob_numeric(4, 8);
        let cfg = MhKMeansConfig {
            threads: 2,
            seed: 3,
            ..MhKMeansConfig::new(4, 12, 3)
        };
        let start = Instant::now();
        let centroids = kmeans_initial_centroids(&data, cfg.k, KMeansInit::RandomItems, cfg.seed);
        let unsharded = crate::mhkmeans::mh_kmeans_from(&data, &cfg, centroids.clone(), start);
        for shards in [2usize, 3] {
            let mut transport = InProcessTransport::new(shards);
            let sharded = shard_mh_kmeans_from(
                &data,
                &cfg,
                centroids.clone(),
                Instant::now(),
                &mut transport,
            )
            .unwrap();
            assert_eq!(sharded.assignments, unsharded.assignments);
            assert_eq!(sharded.centroids, unsharded.centroids);
        }
    }

    #[test]
    fn protocol_types_round_trip_through_values() {
        let update = ShardUpdate {
            assignments: vec![ClusterId(0), ClusterId(2)],
            moves: 1,
            shortlist_total: 9,
            skipped: 4,
            digests: vec![KeyDigest {
                entries: vec![DigestEntry {
                    band: 3,
                    key: u64::MAX - 5,
                    items: 2,
                    clusters: vec![ClusterId(0), ClusterId(2)],
                }],
            }],
            sketch: Some(ModeSketch {
                k: 1,
                n_attrs: 1,
                members: vec![2],
                counts: vec![vec![ValueCount { value: 7, count: 2 }]],
            }),
        };
        let reply = ShardReply::Update(update.clone());
        let back = ShardReply::from_value(&reply.to_value()).unwrap();
        assert_eq!(back, reply);

        let request = ShardRequest::Pass {
            centroids: CentroidSet::Means {
                k: 1,
                dim: 2,
                values: vec![0.1 + 0.2, -7.5],
            },
            digests: update.digests.clone(),
            active: vec![0],
        };
        let back = ShardRequest::from_value(&request.to_value()).unwrap();
        assert_eq!(back, request);
        assert_eq!(
            ShardRequest::from_value(&ShardRequest::Shutdown.to_value()).unwrap(),
            ShardRequest::Shutdown
        );
        assert_eq!(
            ShardReply::from_value(&ShardReply::Done.to_value()).unwrap(),
            ShardReply::Done
        );
    }

    #[test]
    fn worker_errors_are_replies_not_panics() {
        let mut transport = InProcessTransport::new(2);
        // Wrong request count.
        assert!(transport.roundtrip(vec![ShardRequest::Shutdown]).is_err());
        // Request before init.
        let replies = transport
            .roundtrip(broadcast(2, || ShardRequest::Pass {
                centroids: CentroidSet::Means {
                    k: 1,
                    dim: 1,
                    values: vec![0.0],
                },
                digests: vec![KeyDigest::default()],
                active: vec![0],
            }))
            .unwrap();
        assert!(matches!(&replies[0], ShardReply::Error { .. }));
    }
}
