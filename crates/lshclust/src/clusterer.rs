//! The unified entry point: [`Clusterer`] dispatches a [`ClusterSpec`] over
//! the input modality and lowers it onto the per-algorithm internals.
//!
//! Lowering is *exact*: at equal seeds, a facade run is byte-identical to
//! the corresponding legacy entry point (`MhKModes::fit`, `KModes::fit`,
//! `mh_kmeans`, `mh_kprototypes`, `kmeans`, `kprototypes`) — pinned by
//! `tests/equivalence.rs`.
//!
//! Every fit also produces the serving artifact: the returned
//! [`ClusterRun`] owns a [`FittedModel`] (centroids + a frozen LSH index
//! over them) ready for `predict`, `save`, and
//! [`ClusterSpec::warm_start`].

use crate::model::FittedModel;
use crate::run::{Centroids, ClusterRun};
use crate::spec::{categorical_init, numeric_init, ClusterSpec, Fit, Lsh, SpecError};
use lshclust_categorical::{ClusterId, Dataset, Schema};
use lshclust_core::mhkmeans::{mh_kmeans, mh_kmeans_from, MhKMeansConfig};
use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
use lshclust_core::mhkprototypes::{mh_kprototypes, mh_kprototypes_from, MhKPrototypesConfig};
use lshclust_core::minibatch::{
    minibatch_mh_kmeans, minibatch_mh_kmeans_from, minibatch_mh_kmodes, minibatch_mh_kmodes_from,
    minibatch_mh_kprototypes, minibatch_mh_kprototypes_from, MiniBatchParams, UnionBands,
};
use lshclust_core::shard::{
    shard_mh_kmeans_from, shard_mh_kmodes_from, shard_mh_kprototypes_from, InProcessTransport,
    ShardError, ShardTransport,
};
use lshclust_core::streaming::{StreamingConfig, StreamingMhKModes};
use lshclust_kmodes::init::{initial_modes, sample_distinct_items};
use lshclust_kmodes::kmeans::{
    kmeans, kmeans_from, kmeans_initial_centroids, KMeansConfig, NumericDataset,
};
use lshclust_kmodes::kprototypes::{
    kprototypes, kprototypes_from, suggest_gamma, KPrototypesConfig, MixedDataset, Prototypes,
};
use lshclust_kmodes::modes::Modes;
use lshclust_kmodes::stats::{IterationStats, RunSummary};
use lshclust_kmodes::{KModes, KModesConfig, UpdateRule};
use lshclust_minhash::Banding;
use std::time::{Duration, Instant};

/// Runs a [`ClusterSpec`] against any supported input modality.
#[derive(Clone, Debug)]
pub struct Clusterer {
    spec: ClusterSpec,
    /// Warm-start source: refits resume from this model's centroids.
    warm: Option<FittedModel>,
    /// Multi-process sharding: the command spawned per shard when
    /// `spec.shards > 1` (e.g. `"cluster shard-worker"`). `None` runs
    /// shards in-process.
    worker_cmd: Option<String>,
}

impl Clusterer {
    /// Wraps a spec (cold start: centroids come from the spec's `init`).
    pub fn new(spec: ClusterSpec) -> Self {
        Self {
            spec,
            warm: None,
            worker_cmd: None,
        }
    }

    /// Wraps a spec with a warm-start model; `fit` resumes from the model's
    /// centroids instead of re-initialising. Usually reached through
    /// [`ClusterSpec::warm_start`].
    pub fn warm_start(spec: ClusterSpec, model: &FittedModel) -> Self {
        Self {
            spec,
            warm: Some(model.clone()),
            worker_cmd: None,
        }
    }

    /// Runs each shard of a `spec.shards > 1` fit in its own worker
    /// *process* spawned from `cmd` (whitespace-split; typically
    /// `"cluster shard-worker"`), speaking the NDJSON partial-update
    /// protocol of [`crate::shard`]. Without this, shards run in-process.
    /// Ignored at `shards <= 1`.
    pub fn worker_cmd(mut self, cmd: impl Into<String>) -> Self {
        self.worker_cmd = Some(cmd.into());
        self
    }

    /// The spec in use.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Clusters `input` — a categorical [`Dataset`], a [`NumericDataset`],
    /// or a [`MixedDataset`] — according to the spec.
    pub fn fit<I: Input>(&self, input: I) -> Result<ClusterRun, SpecError> {
        input.fit_spec(&self.spec, self.warm.as_ref(), self.worker_cmd.as_deref())
    }

    /// Builds the streaming inserter for items under `schema`, configured
    /// from the spec's [`Lsh::MinHash`] scheme, seed, and
    /// [`crate::StreamOptions`]. `k` is ignored: the stream discovers its
    /// cluster count. Any other LSH scheme — including `Lsh::None` —
    /// returns [`SpecError::UnsupportedLsh`]: streaming is categorical-only
    /// and *requires* the growing MinHash index (there is no full-search
    /// streaming baseline to fall back to).
    pub fn streaming(&self, schema: Schema) -> Result<StreamingMhKModes, SpecError> {
        let spec = &self.spec;
        // The inserter's index grows item by item; there is no partitioned
        // variant of it.
        if spec.shards > 1 {
            return Err(SpecError::ShardsUnsupported { what: "streaming" });
        }
        // The inserter is inherently online — it has no batch fit loop a
        // mini-batch schedule could govern. Reject instead of silently
        // ignoring the discipline.
        if spec.fit != Fit::Full {
            return Err(SpecError::UnsupportedFit {
                modality: "streaming",
                fit: spec.fit.name(),
            });
        }
        let Lsh::MinHash { bands, rows } = spec.lsh else {
            return Err(SpecError::UnsupportedLsh {
                modality: "streaming",
                lsh: spec.lsh.name(),
            });
        };
        let mut config = StreamingConfig::new(Banding::new(bands, rows), schema.n_attrs());
        config.seed = spec.seed;
        config.threads = spec.threads.max(1);
        if let Some(threshold) = spec.stream.distance_threshold {
            config.distance_threshold = threshold;
        }
        config.max_clusters = spec.stream.max_clusters;
        Ok(StreamingMhKModes::new(config, schema))
    }
}

/// An input modality the [`Clusterer`] can dispatch over. Implemented for
/// `&Dataset` (categorical), `&NumericDataset`, and `&MixedDataset`.
pub trait Input {
    /// Runs `spec` on this input; `warm` optionally supplies the trained
    /// model whose centroids seed the refit, `worker_cmd` the per-shard
    /// process command for `spec.shards > 1` (in-process shards when
    /// `None`).
    fn fit_spec(
        self,
        spec: &ClusterSpec,
        warm: Option<&FittedModel>,
        worker_cmd: Option<&str>,
    ) -> Result<ClusterRun, SpecError>;
}

fn check_k(k: usize, n_items: usize) -> Result<(), SpecError> {
    if k == 0 || k > n_items {
        return Err(SpecError::InvalidK { k, n_items });
    }
    Ok(())
}

/// Gate-keeps the spec combinations the sharded coordinator does not cover;
/// called only at `spec.shards > 1`.
fn check_shardable(spec: &ClusterSpec) -> Result<(), SpecError> {
    if spec.fit != Fit::Full {
        return Err(SpecError::ShardsUnsupported {
            what: "Fit::MiniBatch",
        });
    }
    if spec.lsh == Lsh::None {
        return Err(SpecError::ShardsUnsupported {
            what: "the exact baselines (Lsh::None)",
        });
    }
    Ok(())
}

/// Runs a sharded coordinator against the configured transport: worker
/// processes when a command is set, in-process shards otherwise.
fn run_sharded<R>(
    spec: &ClusterSpec,
    worker_cmd: Option<&str>,
    coordinate: impl FnOnce(&mut dyn ShardTransport) -> Result<R, ShardError>,
) -> Result<R, SpecError> {
    let shard_failure = |e: ShardError| SpecError::ShardFailure { message: e.0 };
    match worker_cmd {
        Some(cmd) => {
            let mut transport =
                crate::shard::RemoteTransport::spawn(cmd, spec.shards).map_err(shard_failure)?;
            coordinate(&mut transport).map_err(shard_failure)
        }
        None => coordinate(&mut InProcessTransport::new(spec.shards)).map_err(shard_failure),
    }
}

fn warm_mismatch(expected: String, got: String) -> SpecError {
    SpecError::WarmStartMismatch { expected, got }
}

/// The mini-batch schedule of a spec, when one is requested.
fn minibatch_params(spec: &ClusterSpec) -> Option<MiniBatchParams> {
    match spec.fit {
        Fit::Full => None,
        Fit::MiniBatch {
            batch_size,
            n_steps,
            refresh_every,
        } => Some(MiniBatchParams {
            batch_size,
            n_steps,
            refresh_every,
            closures: spec.closures,
        }),
    }
}

/// Validates a warm-start model against a categorical input and clones its
/// modes as the refit's initial centroids.
fn categorical_warm(
    model: &FittedModel,
    spec: &ClusterSpec,
    dataset: &Dataset,
) -> Result<Modes, SpecError> {
    let modes = model.warm_modes().ok_or_else(|| {
        warm_mismatch(
            "a categorical model".to_owned(),
            format!("a {} model", model.modality()),
        )
    })?;
    if modes.k() != spec.k {
        return Err(warm_mismatch(
            format!("k={}", spec.k),
            format!("k={}", modes.k()),
        ));
    }
    if modes.n_attrs() != dataset.n_attrs() {
        return Err(warm_mismatch(
            format!("{} attributes", dataset.n_attrs()),
            format!("{} attributes", modes.n_attrs()),
        ));
    }
    Ok(modes.clone())
}

/// Validates a warm-start model against a numeric input and clones its
/// centroid matrix.
fn numeric_warm(
    model: &FittedModel,
    spec: &ClusterSpec,
    data: &NumericDataset,
) -> Result<Vec<f64>, SpecError> {
    let (dim, centroids) = model.warm_means().ok_or_else(|| {
        warm_mismatch(
            "a numeric model".to_owned(),
            format!("a {} model", model.modality()),
        )
    })?;
    if centroids.len() / dim != spec.k {
        return Err(warm_mismatch(
            format!("k={}", spec.k),
            format!("k={}", centroids.len() / dim),
        ));
    }
    if dim != data.dim() {
        return Err(warm_mismatch(
            format!("{} dimensions", data.dim()),
            format!("{dim} dimensions"),
        ));
    }
    Ok(centroids.to_vec())
}

/// Validates a warm-start model against a mixed input and rebuilds its
/// prototypes (returning the model's resolved γ as well).
fn mixed_warm(
    model: &FittedModel,
    spec: &ClusterSpec,
    data: &MixedDataset<'_>,
) -> Result<(Prototypes, f64), SpecError> {
    let (prototypes, gamma) = model.warm_prototypes().ok_or_else(|| {
        warm_mismatch(
            "a mixed model".to_owned(),
            format!("a {} model", model.modality()),
        )
    })?;
    if prototypes.k() != spec.k {
        return Err(warm_mismatch(
            format!("k={}", spec.k),
            format!("k={}", prototypes.k()),
        ));
    }
    if prototypes.modes.n_attrs() != data.categorical.n_attrs()
        || prototypes.dim() != data.numeric.dim()
    {
        return Err(warm_mismatch(
            format!(
                "{} attributes × {} dimensions",
                data.categorical.n_attrs(),
                data.numeric.dim()
            ),
            format!(
                "{} attributes × {} dimensions",
                prototypes.modes.n_attrs(),
                prototypes.dim()
            ),
        ));
    }
    Ok((prototypes, gamma))
}

impl Input for &Dataset {
    fn fit_spec(
        self,
        spec: &ClusterSpec,
        warm: Option<&FittedModel>,
        worker_cmd: Option<&str>,
    ) -> Result<ClusterRun, SpecError> {
        check_k(spec.k, self.n_items())?;
        let init = categorical_init(spec.init, "categorical")?;
        let warm_modes = warm
            .map(|model| categorical_warm(model, spec, self))
            .transpose()?;
        if spec.shards > 1 {
            check_shardable(spec)?;
            // The digest-based shortlist always includes an item's own
            // bucket (the paper's Algorithm 2 behaviour); the ablation has
            // no sharded equivalent.
            if !spec.include_self {
                return Err(SpecError::ShardsUnsupported {
                    what: "the include_self = false ablation",
                });
            }
            let Lsh::MinHash { bands, rows } = spec.lsh else {
                return Err(SpecError::UnsupportedLsh {
                    modality: "categorical",
                    lsh: spec.lsh.name(),
                });
            };
            let config = MhKModesConfig {
                k: spec.k,
                banding: Banding::new(bands, rows),
                stop: spec.stop,
                init,
                seed: spec.seed,
                query_mode: spec.query_mode.into(),
                include_self: true,
                threads: spec.threads.max(1),
                closures: spec.closures,
                interleaved: spec.interleaved,
            };
            let setup_start = Instant::now();
            let modes = match warm_modes {
                Some(modes) => modes,
                None => initial_modes(self, config.k, config.init, config.seed),
            };
            let result = run_sharded(spec, worker_cmd, |transport| {
                shard_mh_kmodes_from(self, &config, modes, setup_start, transport)
            })?;
            let model =
                FittedModel::categorical(spec.clone(), self.schema().clone(), result.modes.clone());
            return Ok(ClusterRun {
                assignments: result.assignments,
                centroids: Centroids::Modes(result.modes),
                summary: result.summary,
                index_stats: Some(result.index_stats),
                model,
            });
        }
        if let Some(params) = minibatch_params(spec) {
            let lsh = match spec.lsh {
                Lsh::None => None,
                Lsh::MinHash { bands, rows } => Some(Banding::new(bands, rows)),
                other => {
                    return Err(SpecError::UnsupportedLsh {
                        modality: "categorical",
                        lsh: other.name(),
                    })
                }
            };
            let threads = spec.threads.max(1);
            let result = match warm_modes {
                Some(modes) => minibatch_mh_kmodes_from(
                    self,
                    spec.seed,
                    lsh,
                    &params,
                    threads,
                    modes,
                    Instant::now(),
                ),
                None => minibatch_mh_kmodes(self, spec.k, init, spec.seed, lsh, &params, threads),
            };
            let model =
                FittedModel::categorical(spec.clone(), self.schema().clone(), result.modes.clone());
            return Ok(ClusterRun {
                assignments: result.assignments,
                centroids: Centroids::Modes(result.modes),
                summary: result.summary,
                index_stats: None,
                model,
            });
        }
        match spec.lsh {
            Lsh::None => {
                // The exact baseline honours the iteration cap; its loop has
                // the no-move / cost-stagnation criteria built in.
                let config = KModesConfig {
                    k: spec.k,
                    max_iterations: spec.stop.max_iterations,
                    init,
                    seed: spec.seed,
                    update: UpdateRule::Batch,
                };
                let estimator = KModes::new(config);
                let result = match warm_modes {
                    Some(modes) => estimator.fit_from(self, modes, Duration::ZERO),
                    None => estimator.fit(self),
                };
                let model = FittedModel::categorical(
                    spec.clone(),
                    self.schema().clone(),
                    result.modes.clone(),
                );
                Ok(ClusterRun {
                    assignments: result.assignments,
                    centroids: Centroids::Modes(result.modes),
                    summary: result.summary,
                    index_stats: None,
                    model,
                })
            }
            Lsh::MinHash { bands, rows } => {
                let config = MhKModesConfig {
                    k: spec.k,
                    banding: Banding::new(bands, rows),
                    stop: spec.stop,
                    init,
                    seed: spec.seed,
                    query_mode: spec.query_mode.into(),
                    include_self: spec.include_self,
                    threads: spec.threads.max(1),
                    closures: spec.closures,
                    interleaved: spec.interleaved,
                };
                let estimator = MhKModes::new(config);
                let result = match warm_modes {
                    Some(modes) => estimator.fit_from(self, modes, Instant::now()),
                    None => estimator.fit(self),
                };
                let model = FittedModel::categorical(
                    spec.clone(),
                    self.schema().clone(),
                    result.modes.clone(),
                );
                Ok(ClusterRun {
                    assignments: result.assignments,
                    centroids: Centroids::Modes(result.modes),
                    summary: result.summary,
                    index_stats: Some(result.index_stats),
                    model,
                })
            }
            other => Err(SpecError::UnsupportedLsh {
                modality: "categorical",
                lsh: other.name(),
            }),
        }
    }
}

impl Input for &NumericDataset {
    fn fit_spec(
        self,
        spec: &ClusterSpec,
        warm: Option<&FittedModel>,
        worker_cmd: Option<&str>,
    ) -> Result<ClusterRun, SpecError> {
        check_k(spec.k, self.n_items())?;
        let init = numeric_init(spec.init, "numeric")?;
        let warm_centroids = warm
            .map(|model| numeric_warm(model, spec, self))
            .transpose()?;
        if spec.shards > 1 {
            check_shardable(spec)?;
            let Lsh::SimHash { bands, rows } = spec.lsh else {
                return Err(SpecError::UnsupportedLsh {
                    modality: "numeric",
                    lsh: spec.lsh.name(),
                });
            };
            let config = MhKMeansConfig {
                k: spec.k,
                bands,
                rows,
                stop: spec.stop,
                init,
                seed: spec.seed,
                threads: spec.threads.max(1),
                closures: spec.closures,
                interleaved: spec.interleaved,
            };
            let setup_start = Instant::now();
            let centroids = match warm_centroids {
                Some(centroids) => centroids,
                None => kmeans_initial_centroids(self, config.k, config.init, config.seed),
            };
            let result = run_sharded(spec, worker_cmd, |transport| {
                shard_mh_kmeans_from(self, &config, centroids, setup_start, transport)
            })?;
            let model = FittedModel::numeric(spec.clone(), self.dim(), result.centroids.clone());
            return Ok(ClusterRun {
                assignments: result.assignments,
                centroids: Centroids::Means {
                    dim: self.dim(),
                    values: result.centroids,
                },
                summary: result.summary,
                index_stats: None,
                model,
            });
        }
        if let Some(params) = minibatch_params(spec) {
            let lsh = match spec.lsh {
                Lsh::None => None,
                Lsh::SimHash { bands, rows } => Some((bands, rows)),
                other => {
                    return Err(SpecError::UnsupportedLsh {
                        modality: "numeric",
                        lsh: other.name(),
                    })
                }
            };
            let threads = spec.threads.max(1);
            let result = match warm_centroids {
                Some(centroids) => minibatch_mh_kmeans_from(
                    self,
                    spec.k,
                    spec.seed,
                    lsh,
                    &params,
                    threads,
                    centroids,
                    Instant::now(),
                ),
                None => minibatch_mh_kmeans(self, spec.k, init, spec.seed, lsh, &params, threads),
            };
            let dim = self.dim();
            let model = FittedModel::numeric(spec.clone(), dim, result.centroids.clone());
            return Ok(ClusterRun {
                assignments: result.assignments,
                centroids: Centroids::Means {
                    dim,
                    values: result.centroids,
                },
                summary: result.summary,
                index_stats: None,
                model,
            });
        }
        match spec.lsh {
            Lsh::None => {
                let config = KMeansConfig {
                    k: spec.k,
                    max_iterations: spec.stop.max_iterations,
                    init,
                    seed: spec.seed,
                    tolerance: 1e-9,
                };
                let result = match warm_centroids {
                    Some(centroids) => kmeans_from(self, &config, centroids, Instant::now()),
                    None => kmeans(self, &config),
                };
                let dim = self.dim();
                let model = FittedModel::numeric(spec.clone(), dim, result.centroids.clone());
                Ok(ClusterRun {
                    assignments: result.assignments.into_iter().map(ClusterId).collect(),
                    centroids: Centroids::Means {
                        dim,
                        values: result.centroids,
                    },
                    summary: aggregate_summary(
                        result.n_iterations,
                        result.converged,
                        result.elapsed,
                        spec.k,
                        result.inertia,
                    ),
                    index_stats: None,
                    model,
                })
            }
            Lsh::SimHash { bands, rows } => {
                let config = MhKMeansConfig {
                    k: spec.k,
                    bands,
                    rows,
                    stop: spec.stop,
                    init,
                    seed: spec.seed,
                    threads: spec.threads.max(1),
                    closures: spec.closures,
                    interleaved: spec.interleaved,
                };
                let result = match warm_centroids {
                    Some(centroids) => mh_kmeans_from(self, &config, centroids, Instant::now()),
                    None => mh_kmeans(self, &config),
                };
                let model =
                    FittedModel::numeric(spec.clone(), self.dim(), result.centroids.clone());
                Ok(ClusterRun {
                    assignments: result.assignments,
                    centroids: Centroids::Means {
                        dim: self.dim(),
                        values: result.centroids,
                    },
                    summary: result.summary,
                    index_stats: None,
                    model,
                })
            }
            other => Err(SpecError::UnsupportedLsh {
                modality: "numeric",
                lsh: other.name(),
            }),
        }
    }
}

impl Input for &MixedDataset<'_> {
    fn fit_spec(
        self,
        spec: &ClusterSpec,
        warm: Option<&FittedModel>,
        worker_cmd: Option<&str>,
    ) -> Result<ClusterRun, SpecError> {
        check_k(spec.k, self.n_items())?;
        // Both K-Prototypes paths draw initial items directly; only the
        // paper's random selection applies.
        if spec.init != crate::spec::Init::RandomItems {
            return Err(SpecError::UnsupportedInit {
                modality: "mixed",
                init: spec.init.name(),
            });
        }
        let warm_prototypes = warm
            .map(|model| mixed_warm(model, spec, self))
            .transpose()?;
        // γ precedence: explicit spec value, else the warm model's resolved
        // weight (refit continuity), else Huang's heuristic on this data.
        let gamma = spec
            .gamma
            .or(warm_prototypes.as_ref().map(|(_, g)| *g))
            .unwrap_or_else(|| suggest_gamma(self.numeric));
        if spec.shards > 1 {
            check_shardable(spec)?;
            let Lsh::Union {
                bands,
                rows,
                sim_bands,
                sim_rows,
            } = spec.lsh
            else {
                return Err(SpecError::UnsupportedLsh {
                    modality: "mixed",
                    lsh: spec.lsh.name(),
                });
            };
            let config = MhKPrototypesConfig {
                k: spec.k,
                gamma,
                banding: Banding::new(bands, rows),
                sim_bands,
                sim_rows,
                stop: spec.stop,
                seed: spec.seed,
                threads: spec.threads.max(1),
                closures: spec.closures,
                interleaved: spec.interleaved,
            };
            let setup_start = Instant::now();
            let prototypes = match warm_prototypes {
                Some((prototypes, _)) => prototypes,
                None => {
                    let items = sample_distinct_items(self.n_items(), config.k, config.seed);
                    Prototypes::from_items(self, &items)
                }
            };
            let result = run_sharded(spec, worker_cmd, |transport| {
                shard_mh_kprototypes_from(self, &config, prototypes, setup_start, transport)
            })?;
            let model = FittedModel::mixed(
                spec.clone(),
                self.categorical.schema().clone(),
                &result.prototypes,
                gamma,
            );
            return Ok(ClusterRun {
                assignments: result.assignments,
                centroids: Centroids::Prototypes(result.prototypes),
                summary: result.summary,
                index_stats: None,
                model,
            });
        }
        if let Some(params) = minibatch_params(spec) {
            let lsh = match spec.lsh {
                Lsh::None => None,
                Lsh::Union {
                    bands,
                    rows,
                    sim_bands,
                    sim_rows,
                } => Some(UnionBands {
                    banding: Banding::new(bands, rows),
                    sim_bands,
                    sim_rows,
                }),
                other => {
                    return Err(SpecError::UnsupportedLsh {
                        modality: "mixed",
                        lsh: other.name(),
                    })
                }
            };
            let threads = spec.threads.max(1);
            let result = match warm_prototypes {
                Some((prototypes, _)) => minibatch_mh_kprototypes_from(
                    self,
                    gamma,
                    spec.seed,
                    lsh,
                    &params,
                    threads,
                    prototypes,
                    Instant::now(),
                ),
                None => {
                    minibatch_mh_kprototypes(self, spec.k, gamma, spec.seed, lsh, &params, threads)
                }
            };
            let model = FittedModel::mixed(
                spec.clone(),
                self.categorical.schema().clone(),
                &result.prototypes,
                gamma,
            );
            return Ok(ClusterRun {
                assignments: result.assignments,
                centroids: Centroids::Prototypes(result.prototypes),
                summary: result.summary,
                index_stats: None,
                model,
            });
        }
        match spec.lsh {
            Lsh::None => {
                let config = KPrototypesConfig {
                    k: spec.k,
                    gamma,
                    max_iterations: spec.stop.max_iterations,
                    seed: spec.seed,
                };
                let result = match warm_prototypes {
                    Some((prototypes, _)) => {
                        kprototypes_from(self, &config, prototypes, Instant::now())
                    }
                    None => kprototypes(self, &config),
                };
                let model = FittedModel::mixed(
                    spec.clone(),
                    self.categorical.schema().clone(),
                    &result.prototypes,
                    gamma,
                );
                Ok(ClusterRun {
                    assignments: result.assignments,
                    centroids: Centroids::Prototypes(result.prototypes),
                    summary: aggregate_summary(
                        result.n_iterations,
                        result.converged,
                        result.elapsed,
                        spec.k,
                        result.cost,
                    ),
                    index_stats: None,
                    model,
                })
            }
            Lsh::Union {
                bands,
                rows,
                sim_bands,
                sim_rows,
            } => {
                let config = MhKPrototypesConfig {
                    k: spec.k,
                    gamma,
                    banding: Banding::new(bands, rows),
                    sim_bands,
                    sim_rows,
                    stop: spec.stop,
                    seed: spec.seed,
                    threads: spec.threads.max(1),
                    closures: spec.closures,
                    interleaved: spec.interleaved,
                };
                let result = match warm_prototypes {
                    Some((prototypes, _)) => {
                        mh_kprototypes_from(self, &config, prototypes, Instant::now())
                    }
                    None => mh_kprototypes(self, &config),
                };
                let model = FittedModel::mixed(
                    spec.clone(),
                    self.categorical.schema().clone(),
                    &result.prototypes,
                    gamma,
                );
                Ok(ClusterRun {
                    assignments: result.assignments,
                    centroids: Centroids::Prototypes(result.prototypes),
                    summary: result.summary,
                    index_stats: None,
                    model,
                })
            }
            other => Err(SpecError::UnsupportedLsh {
                modality: "mixed",
                lsh: other.name(),
            }),
        }
    }
}

/// Wraps a legacy totals-only result (`kmeans`, `kprototypes`) in the shared
/// summary shape: one aggregate iteration row carrying the final cost.
fn aggregate_summary(
    n_iterations: usize,
    converged: bool,
    elapsed: Duration,
    k: usize,
    cost: f64,
) -> RunSummary {
    RunSummary {
        iterations: vec![IterationStats {
            iteration: n_iterations,
            duration: elapsed,
            moves: 0,
            avg_candidates: k as f64,
            cost: cost.round() as u64,
            skipped_items: 0,
            active_clusters: 0,
        }],
        converged,
        setup: Duration::ZERO,
    }
}
