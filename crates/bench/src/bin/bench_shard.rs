//! `bench_shard` — the shard-scaling experiment behind `BENCH_shard.json`.
//!
//! ```text
//! bench_shard [--quick] [--seed N] [--shards A,B,C] [--threads N] [--out FILE]
//!
//!   --quick       CI-sized workload (seconds instead of minutes)
//!   --seed N      master seed (default 42)
//!   --shards L    comma-separated shard counts (default 1,2,4)
//!   --threads N   fit threads, fixed across the sweep (default 2)
//!   --out FILE    where to write the JSON report (default BENCH_shard.json)
//! ```

use lshclust_bench::shard::{run, ShardSettings};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_shard [--quick] [--seed N] [--shards 1,2,4] [--threads N] [--out FILE]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut settings = ShardSettings::default();
    let mut out = "BENCH_shard.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => settings.quick = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => settings.seed = s,
                None => return usage(),
            },
            "--shards" => {
                let Some(list) = args.next() else {
                    return usage();
                };
                let parsed: Option<Vec<usize>> =
                    list.split(',').map(|t| t.trim().parse().ok()).collect();
                match parsed {
                    Some(s) if !s.is_empty() && !s.contains(&0) => settings.shards = s,
                    _ => return usage(),
                }
            }
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) if t > 0 => settings.threads = t,
                _ => return usage(),
            },
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = run(&settings);
    print!("{}", report.render());
    let identical = report
        .families
        .iter()
        .flat_map(|f| &f.runs)
        .all(|r| r.identical_to_unsharded);
    if let Err(e) = report.write_json(&out) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {out}");
    if !identical {
        eprintln!("error: a sharded run diverged from the unsharded reference");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
