//! The assignment step: find the closest mode for an item.
//!
//! [`best_cluster_full`] searches all `k` modes — the baseline behaviour
//! whose cost the paper attacks. [`best_cluster_among`] searches only a
//! shortlist of candidate clusters — the primitive `lshclust-core` builds
//! MH-K-Modes on. Both use the same bounded distance kernel and the same
//! deterministic tie-break (lowest cluster id), so the two algorithms differ
//! *only* in which clusters they examine.

use crate::modes::Modes;
use lshclust_categorical::dissimilarity::{matching, matching_bounded};
use lshclust_categorical::{ClusterId, ValueId};

/// Searches all `k` modes for the closest one.
///
/// Returns `(cluster, distance)`. Ties break to the lowest cluster id because
/// iteration is in id order and only strictly better distances replace the
/// incumbent.
pub fn best_cluster_full(item: &[ValueId], modes: &Modes) -> (ClusterId, u32) {
    debug_assert!(modes.k() > 0, "cannot assign with zero clusters");
    let mut best_c = 0u32;
    let mut best_d = matching(item, modes.mode(0));
    for c in 1..modes.k() {
        if best_d == 0 {
            break; // cannot improve on a perfect match
        }
        if let Some(d) = matching_bounded(item, modes.mode(c), best_d) {
            best_d = d;
            best_c = c as u32;
        }
    }
    (ClusterId(best_c), best_d)
}

/// Searches only the clusters in `shortlist` (Algorithm 2's modified
/// assignment). Returns `None` on an empty shortlist — the caller decides the
/// fallback policy (MH-K-Modes keeps the current assignment; with
/// self-collision enabled the shortlist is never empty).
pub fn best_cluster_among(
    item: &[ValueId],
    modes: &Modes,
    shortlist: &[ClusterId],
) -> Option<(ClusterId, u32)> {
    let (&first, rest) = shortlist.split_first()?;
    let mut best_c = first;
    let mut best_d = matching(item, modes.of(first));
    for &c in rest {
        if best_d == 0 && c >= best_c {
            continue; // only a lower id could still displace a perfect match
        }
        // The shortlist arrives in collision order, not id order, so a
        // lower-id candidate may appear *after* the incumbent; allow distance
        // equality for those to keep the lowest-id tie-break exact.
        let bound = if c < best_c { best_d + 1 } else { best_d };
        if let Some(d) = matching_bounded(item, modes.of(c), bound) {
            debug_assert!(d < best_d || (d == best_d && c < best_c));
            best_d = d;
            best_c = c;
        }
    }
    Some((best_c, best_d))
}

/// Assigns every item to its closest mode by full search, writing into
/// `assignments` and returning the number of items that changed cluster.
pub fn assign_all_full(
    dataset: &lshclust_categorical::Dataset,
    modes: &Modes,
    assignments: &mut [ClusterId],
) -> usize {
    assert_eq!(assignments.len(), dataset.n_items());
    let mut moves = 0;
    for (item, slot) in assignments.iter_mut().enumerate() {
        let (c, _) = best_cluster_full(dataset.row(item), modes);
        if c != *slot {
            moves += 1;
            *slot = c;
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::{Dataset, DatasetBuilder};

    fn dataset(rows: &[&[&str]]) -> Dataset {
        let mut b = DatasetBuilder::anonymous(rows[0].len());
        for r in rows {
            b.push_str_row(r, None).unwrap();
        }
        b.finish()
    }

    #[test]
    fn full_search_finds_nearest() {
        let ds = dataset(&[
            &["a", "b", "c"], // mode 0
            &["x", "y", "z"], // mode 1
            &["a", "b", "z"], // item: distance 1 to mode 0, 2 to mode 1
        ]);
        let modes = Modes::from_items(&ds, &[0, 1]);
        let (c, d) = best_cluster_full(ds.row(2), &modes);
        assert_eq!((c, d), (ClusterId(0), 1));
    }

    #[test]
    fn full_search_tie_breaks_low_id() {
        let ds = dataset(&[&["a", "b"], &["a", "c"], &["a", "d"]]);
        let modes = Modes::from_items(&ds, &[0, 1]);
        // Item 2 is distance 1 from both modes → cluster 0 wins.
        let (c, d) = best_cluster_full(ds.row(2), &modes);
        assert_eq!((c, d), (ClusterId(0), 1));
    }

    #[test]
    fn full_search_early_exits_on_zero() {
        let ds = dataset(&[&["a"], &["b"]]);
        let modes = Modes::from_items(&ds, &[0, 1]);
        let (c, d) = best_cluster_full(ds.row(0), &modes);
        assert_eq!((c, d), (ClusterId(0), 0));
    }

    #[test]
    fn shortlist_search_respects_shortlist() {
        let ds = dataset(&[&["a", "b", "c"], &["x", "y", "z"], &["a", "b", "z"]]);
        let modes = Modes::from_items(&ds, &[0, 1]);
        // Shortlist containing only the worse cluster: it must win anyway.
        let got = best_cluster_among(ds.row(2), &modes, &[ClusterId(1)]);
        assert_eq!(got, Some((ClusterId(1), 2)));
    }

    #[test]
    fn shortlist_search_matches_full_when_complete() {
        let ds = dataset(&[
            &["a", "b", "c", "d"],
            &["a", "x", "c", "d"],
            &["p", "q", "r", "s"],
            &["a", "b", "c", "s"],
        ]);
        let modes = Modes::from_items(&ds, &[0, 1, 2]);
        let all: Vec<ClusterId> = (0..3).map(ClusterId).collect();
        for i in 0..ds.n_items() {
            let full = best_cluster_full(ds.row(i), &modes);
            let among = best_cluster_among(ds.row(i), &modes, &all).unwrap();
            assert_eq!(full, among, "item {i}");
        }
    }

    #[test]
    fn shortlist_order_does_not_change_result() {
        let ds = dataset(&[&["a", "b"], &["a", "c"], &["a", "d"]]);
        let modes = Modes::from_items(&ds, &[0, 1]);
        let fwd = best_cluster_among(ds.row(2), &modes, &[ClusterId(0), ClusterId(1)]);
        let rev = best_cluster_among(ds.row(2), &modes, &[ClusterId(1), ClusterId(0)]);
        // Tie on distance: lowest id must win regardless of shortlist order.
        assert_eq!(fwd, rev);
        assert_eq!(fwd, Some((ClusterId(0), 1)));
    }

    #[test]
    fn empty_shortlist_returns_none() {
        let ds = dataset(&[&["a"]]);
        let modes = Modes::from_items(&ds, &[0]);
        assert_eq!(best_cluster_among(ds.row(0), &modes, &[]), None);
    }

    #[test]
    fn assign_all_counts_moves() {
        let ds = dataset(&[&["a", "b"], &["a", "b"], &["x", "y"]]);
        let modes = Modes::from_items(&ds, &[0, 2]);
        let mut assignments = vec![ClusterId(1); 3];
        let moves = assign_all_full(&ds, &modes, &mut assignments);
        assert_eq!(assignments, vec![ClusterId(0), ClusterId(0), ClusterId(1)]);
        assert_eq!(moves, 2); // item 2 already in cluster 1
    }

    #[test]
    fn assign_all_is_stable_at_fixpoint() {
        let ds = dataset(&[&["a"], &["b"]]);
        let modes = Modes::from_items(&ds, &[0, 1]);
        let mut assignments = vec![ClusterId(0), ClusterId(1)];
        assert_eq!(assign_all_full(&ds, &modes, &mut assignments), 0);
    }
}
