//! `bench_artifact` — the persistence experiment behind
//! `BENCH_artifact.json`: v1 JSON vs v2 flat binary load latency per `k`,
//! hot-reload percentiles under serving load, and cache-hit vs refit wall
//! time through the `ArtifactStore`.
//!
//! Exits non-zero if the v1- and v2-loaded models ever diverge on the
//! probe batch, or if the store hit is not byte-identical.
//!
//! ```text
//! bench_artifact [--quick] [--seed N] [--ks A,B,C] [--reps N] [--out FILE]
//!
//!   --quick     CI-sized workload (small k sweep)
//!   --seed N    master seed (default 42)
//!   --ks L      comma-separated centroid counts (default 200,2000,20000)
//!   --reps N    loads per envelope, fastest kept (default 5)
//!   --out FILE  where to write the JSON report (default BENCH_artifact.json)
//! ```

use lshclust_bench::artifact::{run, ArtifactSettings};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_artifact [--quick] [--seed N] [--ks 200,2000,20000] [--reps N] [--out FILE]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut settings = ArtifactSettings::default();
    let mut out = "BENCH_artifact.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => settings.quick = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => settings.seed = s,
                None => return usage(),
            },
            "--ks" => {
                let Some(list) = args.next() else {
                    return usage();
                };
                let parsed: Option<Vec<usize>> =
                    list.split(',').map(|t| t.trim().parse().ok()).collect();
                match parsed {
                    Some(ks) if !ks.is_empty() && ks.iter().all(|&k| k > 0) => settings.ks = ks,
                    _ => return usage(),
                }
            }
            "--reps" => match args.next().and_then(|v| v.parse().ok()) {
                Some(r) if r > 0 => settings.load_reps = r,
                _ => return usage(),
            },
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = run(&settings);
    print!("{}", report.render());
    if let Err(e) = report.write_json(&out) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {out}");
    if !report.byte_identical() {
        eprintln!("error: v1/v2 (or cache hit) models diverged — see report");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
