//! `bench_minibatch` — the mini-batch comparison experiment behind
//! `BENCH_minibatch.json`: full-batch vs Sculley mini-batch vs shortlisted
//! mini-batch, per algorithm family, through the `lshclust` facade.
//!
//! ```text
//! cargo run --release -p lshclust-bench --bin bench_minibatch
//! cargo run --release -p lshclust-bench --bin bench_minibatch -- --quick --out BENCH_minibatch.json
//! ```
//!
//! Flags:
//!
//! ```text
//!   --quick       CI-sized workload (3k items) instead of the full 20k
//!   --seed N      master seed (default 42)
//!   --out FILE    where to write the JSON report (default BENCH_minibatch.json)
//! ```

use lshclust_bench::minibatch::{run, MiniBatchSettings};
use std::process::ExitCode;

fn parse() -> Result<(MiniBatchSettings, String), String> {
    let mut settings = MiniBatchSettings::default();
    let mut out = "BENCH_minibatch.json".to_owned();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => settings.quick = true,
            "--seed" => {
                settings.seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => out = argv.next().ok_or("--out needs a value")?,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok((settings, out))
}

fn main() -> ExitCode {
    let (settings, out) = match parse() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run(&settings);
    println!("{}", report.render());
    if let Err(e) = report.write_json(&out) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}
