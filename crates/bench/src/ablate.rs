//! Ablation experiment: the design choices DESIGN.md §5 calls out, plus the
//! comparisons the paper's related-work section (§II) discusses but never
//! runs — MinHash shortlists vs canopy shortlists vs mini-batch updates.
//!
//! Everything is held fixed (dataset, initial centroids, distance kernels,
//! tie-breaks) except the single axis under study.

use crate::scale::{Settings, SyntheticShape, SHAPE_FIG2};
use crate::synthetic::{dataset_for, quality_of};
use crate::table::{f3, secs, TextTable};
use lshclust_categorical::ClusterId;
use lshclust_core::canopy::{Canopies, CanopyConfig, CanopyProvider};
use lshclust_core::framework::{fit, CentroidModel, StopPolicy};
use lshclust_core::mhkmodes::{KModesModel, MhKModes, MhKModesConfig};
use lshclust_kmodes::assign::assign_all_full;
use lshclust_kmodes::init::{initial_modes, InitMethod};
use lshclust_kmodes::minibatch::{minibatch_kmodes, MiniBatchConfig};
use lshclust_kmodes::{KModes, KModesConfig, UpdateRule};
use lshclust_minhash::{Banding, QueryMode};
use std::time::Instant;

/// One ablation row: a strategy, its cost and its quality.
struct Row {
    name: String,
    total_s: f64,
    iterations: String,
    avg_shortlist: String,
    purity: f64,
}

fn mh_row(
    name: &str,
    dataset: &lshclust_categorical::Dataset,
    labels: &[u32],
    k: usize,
    configure: impl FnOnce(MhKModesConfig) -> MhKModesConfig,
) -> Row {
    let config = configure(MhKModesConfig::new(k, Banding::new(20, 5)).max_iterations(30));
    let result = MhKModes::new(config).fit(dataset);
    Row {
        name: name.to_owned(),
        total_s: result.summary.total_time().as_secs_f64(),
        iterations: result.summary.n_iterations().to_string(),
        avg_shortlist: f3(result
            .summary
            .iterations
            .last()
            .map_or(0.0, |s| s.avg_candidates)),
        purity: quality_of(&result.assignments, labels).purity,
    }
}

/// Runs the full ablation suite on the Fig. 2-shaped dataset.
pub fn run(settings: &Settings) -> crate::figures::Report {
    let shape: SyntheticShape = SHAPE_FIG2.scaled(settings.scale);
    let dataset = dataset_for(shape, settings);
    let labels = dataset.labels().unwrap().to_vec();
    let k = shape.n_clusters;
    let seed = settings.seed;

    let mut rows: Vec<Row> = Vec::new();

    // --- reference points ------------------------------------------------
    let baseline = KModes::new(KModesConfig::new(k).seed(seed).max_iterations(30)).fit(&dataset);
    rows.push(Row {
        name: "K-Modes (full search)".into(),
        total_s: baseline.summary.total_time().as_secs_f64(),
        iterations: baseline.summary.n_iterations().to_string(),
        avg_shortlist: k.to_string(),
        purity: quality_of(&baseline.assignments, &labels).purity,
    });
    rows.push(mh_row(
        "MH-K-Modes 20b5r (paper)",
        &dataset,
        &labels,
        k,
        |c| c.seed(seed),
    ));

    // --- shortlist structure: canopies instead of LSH buckets -------------
    {
        let start = Instant::now();
        let modes = initial_modes(&dataset, k, InitMethod::RandomItems, seed);
        let mut assignments = vec![ClusterId(0); dataset.n_items()];
        let mut model = KModesModel::new(&dataset, modes);
        assign_all_full(&dataset, model.modes(), &mut assignments);
        model.update_centroids(&assignments);
        let canopies = Canopies::build(&dataset, &CanopyConfig::new());
        let mean_memberships = canopies.mean_memberships();
        let mut provider = CanopyProvider::new(canopies, &assignments);
        let setup = start.elapsed();
        let run = fit(
            &mut model,
            &mut provider,
            assignments,
            setup,
            &StopPolicy::max_iterations(30),
            true,
        );
        rows.push(Row {
            name: format!("Canopy shortlists (T1=0.3, {mean_memberships:.1} canopies/item)"),
            total_s: run.summary.total_time().as_secs_f64(),
            iterations: run.summary.n_iterations().to_string(),
            avg_shortlist: f3(run
                .summary
                .iterations
                .last()
                .map_or(0.0, |s| s.avg_candidates)),
            purity: quality_of(&run.assignments, &labels).purity,
        });
    }

    // --- orthogonal acceleration: mini-batch updates ----------------------
    {
        let result = minibatch_kmodes(
            &dataset,
            &MiniBatchConfig::new(k)
                .batch_size(256)
                .n_steps(40)
                .seed(seed),
        );
        rows.push(Row {
            name: "Mini-batch K-Modes (Sculley-style, 40x256)".into(),
            total_s: result.elapsed.as_secs_f64(),
            iterations: format!("{} steps", result.n_steps),
            avg_shortlist: k.to_string(),
            purity: quality_of(&result.assignments, &labels).purity,
        });
    }

    // --- design toggles on MH-K-Modes -------------------------------------
    rows.push(mh_row(
        "MH 20b5r, precomputed candidates",
        &dataset,
        &labels,
        k,
        |c| c.seed(seed).query_mode(QueryMode::Precomputed),
    ));
    rows.push(mh_row(
        "MH 20b5r, self-collision disabled",
        &dataset,
        &labels,
        k,
        |c| c.seed(seed).include_self(false),
    ));
    rows.push(mh_row(
        "MH 20b5r, 2 assignment threads",
        &dataset,
        &labels,
        k,
        |c| c.seed(seed).threads(2),
    ));

    // --- baseline update-rule ablation -------------------------------------
    {
        let online = KModes::new(
            KModesConfig::new(k)
                .seed(seed)
                .max_iterations(30)
                .update(UpdateRule::Online),
        )
        .fit(&dataset);
        rows.push(Row {
            name: "K-Modes, online (Huang) updates".into(),
            total_s: online.summary.total_time().as_secs_f64(),
            iterations: online.summary.n_iterations().to_string(),
            avg_shortlist: k.to_string(),
            purity: quality_of(&online.assignments, &labels).purity,
        });
    }

    let mut report = crate::figures::Report::new(format!(
        "Ablations — {} items x {} attrs x {} clusters",
        shape.n_items, shape.n_attrs, shape.n_clusters
    ));
    let mut t = TextTable::new([
        "strategy",
        "total_s",
        "iterations",
        "avg_shortlist",
        "purity",
    ]);
    for r in &rows {
        t.row([
            r.name.clone(),
            f3(r.total_s),
            r.iterations.clone(),
            r.avg_shortlist.clone(),
            f3(r.purity),
        ]);
    }
    report.section("ablations", t);
    report.note("canopy row: quadratic-in-n canopy construction is included in its total");
    report.note(format!(
        "baseline setup {}s is initialisation only",
        secs(baseline.summary.setup)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_suite_runs_and_reports_all_strategies() {
        let settings = Settings {
            scale: 0.002,
            seed: 3,
            out_dir: None,
        };
        let report = run(&settings);
        let text = report.render();
        assert!(text.contains("K-Modes (full search)"));
        assert!(text.contains("MH-K-Modes 20b5r"));
        assert!(text.contains("Canopy shortlists"));
        assert!(text.contains("Mini-batch"));
        assert!(text.contains("self-collision disabled"));
        assert_eq!(report.sections[0].1.len(), 8);
    }
}

/// Empirical §III-D: sweeps the `(bands, rows)` grid on the Fig. 2-shaped
/// dataset and reports speedup / shortlist / quality per combination — the
/// experiment behind the paper's parameter-choice discussion.
pub fn sweep(settings: &Settings) -> crate::figures::Report {
    let shape: SyntheticShape = SHAPE_FIG2.scaled(settings.scale);
    let dataset = dataset_for(shape, settings);
    let labels = dataset.labels().unwrap().to_vec();
    let k = shape.n_clusters;
    let seed = settings.seed;

    let baseline = KModes::new(KModesConfig::new(k).seed(seed).max_iterations(30)).fit(&dataset);
    let baseline_total = baseline.summary.total_time().as_secs_f64();
    let baseline_purity = quality_of(&baseline.assignments, &labels).purity;

    let mut report = crate::figures::Report::new(format!(
        "Parameter sweep — {} items x {} attrs x {} clusters (K-Modes: {:.3}s, purity {:.3})",
        shape.n_items, shape.n_attrs, shape.n_clusters, baseline_total, baseline_purity
    ));
    let mut t = TextTable::new([
        "banding",
        "threshold_sim",
        "hashes",
        "total_s",
        "speedup",
        "iterations",
        "avg_shortlist",
        "purity",
    ]);
    for (bands, rows) in [
        (1u32, 1u32),
        (5, 1),
        (25, 1),
        (10, 2),
        (20, 2),
        (10, 5),
        (20, 5),
        (50, 5),
        (20, 8),
    ] {
        let banding = Banding::new(bands, rows);
        let result = MhKModes::new(
            MhKModesConfig::new(k, banding)
                .seed(seed)
                .max_iterations(30),
        )
        .fit(&dataset);
        let total = result.summary.total_time().as_secs_f64();
        t.row([
            banding.to_string(),
            f3(banding.threshold()),
            banding.signature_len().to_string(),
            f3(total),
            f3(baseline_total / total),
            result.summary.n_iterations().to_string(),
            f3(result
                .summary
                .iterations
                .last()
                .map_or(0.0, |s| s.avg_candidates)),
            f3(quality_of(&result.assignments, &labels).purity),
        ]);
    }
    report.section("sweep", t);
    report.note(
        "expected shape (§III-D): more hashes narrow the shortlist but cost signature \
         time; tiny parameter sets (1b1r) already capture most of the speedup because \
         one colliding cluster member suffices",
    );
    report
}

#[cfg(test)]
mod sweep_tests {
    use super::*;

    #[test]
    fn sweep_covers_the_grid() {
        let settings = Settings {
            scale: 0.002,
            seed: 3,
            out_dir: None,
        };
        let report = sweep(&settings);
        assert_eq!(report.sections[0].1.len(), 9);
        assert!(report.render().contains("20b5r"));
    }
}
