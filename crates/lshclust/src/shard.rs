//! **Multi-process sharding** — the NDJSON transport over
//! [`lshclust_core::shard`]'s partial-update protocol.
//!
//! The coordinator side ([`RemoteTransport`]) spawns one worker process per
//! shard and speaks one JSON object per line over each worker's
//! stdin/stdout — the same framing the `cluster serve` loop uses. The
//! worker side ([`run_worker`]) is a blocking read-eval-print loop over
//! [`ShardRequest`]s; the `cluster shard-worker` CLI mode is a thin wrapper
//! around it. [`handle_line`] is the per-line step, exposed so tests can
//! drive the exact serialized protocol without spawning processes.
//!
//! A round-trip writes **all** shard requests before reading **any** reply
//! (requests fit in pipe buffers long before a worker needs its next one,
//! and every worker computes before replying), so the shards genuinely run
//! concurrently and the exchange cannot deadlock.
//!
//! ## Wire schema
//!
//! Requests (coordinator → worker), externally tagged:
//!
//! ```json
//! {"Init": {"k": 3, "threads": 2, "gamma": 0.0, "categorical": {...}, "numeric": null}}
//! {"AssignFull": {"centroids": {"Modes": {...}}}}
//! {"Pass": {"centroids": {"Modes": {...}}, "digests": [{"entries": [...]}]}}
//! "Shutdown"
//! ```
//!
//! Replies (worker → coordinator):
//!
//! ```json
//! "Ready"
//! {"Update": {"assignments": [...], "moves": 4, "shortlist_total": 120,
//!             "digests": [{"entries": [...]}], "sketch": {...}}}
//! "Done"
//! {"Error": {"message": "..."}}
//! ```
//!
//! The full field-level schema is documented in
//! `docs/ARCHITECTURE.md § Sharded fitting`.

use lshclust_core::shard::{ShardError, ShardReply, ShardRequest, ShardTransport, ShardWorker};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// One worker process per shard, spoken to over NDJSON pipes.
///
/// The worker command is split on whitespace (`"cluster shard-worker"` →
/// program `cluster`, argument `shard-worker`); each worker inherits the
/// coordinator's stderr so failures stay visible. Dropping the transport
/// sends `"Shutdown"` to every surviving worker and reaps the processes.
pub struct RemoteTransport {
    workers: Vec<RemoteWorker>,
}

struct RemoteWorker {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl RemoteTransport {
    /// Spawns `n_shards` worker processes from `worker_cmd`.
    pub fn spawn(worker_cmd: &str, n_shards: usize) -> Result<Self, ShardError> {
        let mut parts = worker_cmd.split_whitespace();
        let program = parts
            .next()
            .ok_or_else(|| ShardError("empty worker command".into()))?;
        let args: Vec<&str> = parts.collect();
        let mut workers = Vec::with_capacity(n_shards.max(1));
        for shard in 0..n_shards.max(1) {
            let mut child = Command::new(program)
                .args(&args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .map_err(|e| {
                    ShardError(format!("cannot spawn worker {shard} (`{worker_cmd}`): {e}"))
                })?;
            let stdin = child.stdin.take().expect("piped stdin");
            let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
            workers.push(RemoteWorker {
                child,
                stdin,
                stdout,
            });
        }
        Ok(Self { workers })
    }
}

impl ShardTransport for RemoteTransport {
    fn n_shards(&self) -> usize {
        self.workers.len()
    }

    fn roundtrip(&mut self, requests: Vec<ShardRequest>) -> Result<Vec<ShardReply>, ShardError> {
        if requests.len() != self.workers.len() {
            return Err(ShardError(format!(
                "{} requests for {} shards",
                requests.len(),
                self.workers.len()
            )));
        }
        // Write phase: every shard gets its request before any reply is
        // awaited, so all workers compute concurrently.
        for (shard, (worker, request)) in self.workers.iter_mut().zip(&requests).enumerate() {
            let line = serde_json::to_string(request)
                .map_err(|e| ShardError(format!("cannot encode request: {}", e.0)))?;
            writeln!(worker.stdin, "{line}")
                .and_then(|()| worker.stdin.flush())
                .map_err(|e| ShardError(format!("cannot write to worker {shard}: {e}")))?;
        }
        // Read phase: replies in shard order.
        let mut replies = Vec::with_capacity(self.workers.len());
        for (shard, worker) in self.workers.iter_mut().enumerate() {
            let mut line = String::new();
            let n = worker
                .stdout
                .read_line(&mut line)
                .map_err(|e| ShardError(format!("cannot read from worker {shard}: {e}")))?;
            if n == 0 {
                return Err(ShardError(format!("worker {shard} exited mid-protocol")));
            }
            let reply: ShardReply = serde_json::from_str(line.trim())
                .map_err(|e| ShardError(format!("worker {shard} sent invalid reply: {}", e.0)))?;
            replies.push(reply);
        }
        Ok(replies)
    }
}

impl Drop for RemoteTransport {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // Best-effort shutdown; a worker that already died is fine.
            if let Ok(line) = serde_json::to_string(&ShardRequest::Shutdown) {
                let _ = writeln!(worker.stdin, "{line}");
                let _ = worker.stdin.flush();
            }
        }
        for worker in &mut self.workers {
            let _ = worker.child.wait();
        }
    }
}

/// Serves one request line against the worker slot, returning the reply
/// line (without trailing newline). `Init` fills the slot; `Shutdown`
/// clears it and returns `"Done"`; malformed JSON becomes an `Error` reply
/// rather than killing the worker. Exposed so tests can loop the exact
/// wire protocol back without processes.
pub fn handle_line(slot: &mut Option<ShardWorker>, line: &str) -> String {
    let reply = match serde_json::from_str::<ShardRequest>(line) {
        Ok(ShardRequest::Init(init)) => match ShardWorker::new(init) {
            Ok(worker) => {
                *slot = Some(worker);
                ShardReply::Ready
            }
            Err(e) => ShardReply::Error { message: e.0 },
        },
        Ok(ShardRequest::Shutdown) => {
            *slot = None;
            ShardReply::Done
        }
        Ok(request) => match slot {
            Some(worker) => worker.handle(request),
            None => ShardReply::Error {
                message: "request before init".to_owned(),
            },
        },
        Err(e) => ShardReply::Error {
            message: format!("invalid request: {}", e.0),
        },
    };
    serde_json::to_string(&reply).unwrap_or_else(|e| {
        format!(
            "{{\"Error\":{{\"message\":\"cannot encode reply: {}\"}}}}",
            e.0
        )
    })
}

/// The worker loop behind `cluster shard-worker`: reads one NDJSON request
/// per line, replies one line, exits on `"Shutdown"` or EOF.
pub fn run_worker(reader: impl BufRead, mut writer: impl Write) -> std::io::Result<()> {
    let mut slot: Option<ShardWorker> = None;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let shutting_down = matches!(
            serde_json::from_str::<ShardRequest>(line.trim()),
            Ok(ShardRequest::Shutdown)
        );
        let reply = handle_line(&mut slot, line.trim());
        writeln!(writer, "{reply}")?;
        writer.flush()?;
        if shutting_down {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_line_enforces_init_first_and_survives_garbage() {
        let mut slot = None;
        let reply = handle_line(&mut slot, "{not json");
        assert!(reply.contains("Error"), "{reply}");
        let shutdown = serde_json::to_string(&ShardRequest::Shutdown).unwrap();
        assert_eq!(handle_line(&mut slot, &shutdown), "\"Done\"");
    }

    #[test]
    fn run_worker_replies_line_per_line_and_stops_on_shutdown() {
        let shutdown = serde_json::to_string(&ShardRequest::Shutdown).unwrap();
        let input = format!("\n{shutdown}\nignored-after-shutdown\n");
        let mut out = Vec::new();
        run_worker(input.as_bytes(), &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "\"Done\"\n");
    }
}
