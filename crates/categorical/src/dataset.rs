//! Dense categorical datasets.
//!
//! A [`Dataset`] is an `n_items × n_attrs` row-major matrix of [`ValueId`]s
//! plus a [`Schema`] and an optional ground-truth label per item. Rows are
//! exposed as `&[ValueId]` slices so the assignment loops index a flat buffer
//! (the perf guide's "slice before the loop" advice).

use crate::dictionary::Schema;
use crate::types::{AttrId, ItemId, ValueId};

/// Error raised by [`DatasetBuilder`] when a row has the wrong arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArityError {
    /// Number of attributes the schema declares.
    pub expected: usize,
    /// Number of values in the offending row.
    pub got: usize,
}

impl std::fmt::Display for ArityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "row has {} values but schema has {} attributes",
            self.got, self.expected
        )
    }
}

impl std::error::Error for ArityError {}

/// A dense, immutable categorical dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    schema: Schema,
    n_items: usize,
    n_attrs: usize,
    /// Row-major `n_items * n_attrs` value matrix.
    values: Vec<ValueId>,
    /// Optional ground-truth class per item (for external evaluation only —
    /// never consulted by the clustering algorithms).
    labels: Option<Vec<u32>>,
}

impl Dataset {
    /// Assembles a dataset from parts. Panics if `values.len()` is not
    /// `n_items * schema.n_attrs()` or labels have the wrong length.
    pub fn from_parts(schema: Schema, values: Vec<ValueId>, labels: Option<Vec<u32>>) -> Self {
        let n_attrs = schema.n_attrs();
        assert!(n_attrs > 0, "dataset must have at least one attribute");
        assert_eq!(
            values.len() % n_attrs,
            0,
            "value buffer length {} is not a multiple of n_attrs {}",
            values.len(),
            n_attrs
        );
        let n_items = values.len() / n_attrs;
        if let Some(l) = &labels {
            assert_eq!(l.len(), n_items, "labels length must equal n_items");
        }
        Self {
            schema,
            n_items,
            n_attrs,
            values,
            labels,
        }
    }

    /// Number of items (rows).
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of attributes (columns).
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// The schema (attribute names and dictionaries).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row `i` as a value slice of length [`Self::n_attrs`].
    #[inline]
    pub fn row(&self, i: usize) -> &[ValueId] {
        let start = i * self.n_attrs;
        &self.values[start..start + self.n_attrs]
    }

    /// Row addressed by [`ItemId`].
    #[inline]
    pub fn item(&self, id: ItemId) -> &[ValueId] {
        self.row(id.idx())
    }

    /// Single cell.
    #[inline]
    pub fn value(&self, item: ItemId, attr: AttrId) -> ValueId {
        self.values[item.idx() * self.n_attrs + attr.idx()]
    }

    /// Ground-truth labels, if attached.
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// Iterates all rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[ValueId]> {
        self.values.chunks_exact(self.n_attrs)
    }

    /// Number of *present* feature values in row `i` (cells that are neither
    /// [`crate::NOT_PRESENT`] nor the schema's registered absent value).
    pub fn present_count(&self, i: usize) -> usize {
        self.row(i)
            .iter()
            .enumerate()
            .filter(|&(a, &v)| !self.schema.is_absent(AttrId(a as u32), v))
            .count()
    }

    /// Decodes row `i` back to strings (absent cells render as `"∅"`).
    pub fn decode_row(&self, i: usize) -> Vec<String> {
        self.row(i)
            .iter()
            .enumerate()
            .map(|(a, &v)| {
                self.schema
                    .dictionary(AttrId(a as u32))
                    .name(v)
                    .unwrap_or("∅")
                    .to_owned()
            })
            .collect()
    }

    /// Returns the number of distinct ground-truth classes (0 if unlabelled).
    pub fn n_classes(&self) -> usize {
        self.labels
            .as_ref()
            .map(|l| l.iter().copied().max().map_or(0, |m| m as usize + 1))
            .unwrap_or(0)
    }
}

/// Incremental [`Dataset`] construction with on-the-fly interning.
#[derive(Debug)]
pub struct DatasetBuilder {
    schema: Schema,
    values: Vec<ValueId>,
    labels: Vec<u32>,
    any_label: bool,
}

impl DatasetBuilder {
    /// Starts a builder with named attributes.
    pub fn new(attr_names: Vec<String>) -> Self {
        Self {
            schema: Schema::new(attr_names),
            values: Vec::new(),
            labels: Vec::new(),
            any_label: false,
        }
    }

    /// Starts a builder with `n` anonymous attributes.
    pub fn anonymous(n: usize) -> Self {
        Self {
            schema: Schema::anonymous(n),
            values: Vec::new(),
            labels: Vec::new(),
            any_label: false,
        }
    }

    /// Mutable schema access (e.g. to register absent values).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        if self.schema.n_attrs() == 0 {
            0
        } else {
            self.values.len() / self.schema.n_attrs()
        }
    }

    /// Whether no row has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a row of raw string values, interning each one.
    pub fn push_str_row(&mut self, row: &[&str], label: Option<u32>) -> Result<ItemId, ArityError> {
        if row.len() != self.schema.n_attrs() {
            return Err(ArityError {
                expected: self.schema.n_attrs(),
                got: row.len(),
            });
        }
        let id = ItemId::from(self.len());
        for (a, s) in row.iter().enumerate() {
            let v = self.schema.dictionary_mut(AttrId(a as u32)).intern(s);
            self.values.push(v);
        }
        self.push_label(label);
        Ok(id)
    }

    /// Appends a row of pre-encoded values ([`crate::NOT_PRESENT`] allowed).
    pub fn push_encoded_row(
        &mut self,
        row: &[ValueId],
        label: Option<u32>,
    ) -> Result<ItemId, ArityError> {
        if row.len() != self.schema.n_attrs() {
            return Err(ArityError {
                expected: self.schema.n_attrs(),
                got: row.len(),
            });
        }
        let id = ItemId::from(self.len());
        self.values.extend_from_slice(row);
        self.push_label(label);
        Ok(id)
    }

    fn push_label(&mut self, label: Option<u32>) {
        match label {
            Some(l) => {
                self.any_label = true;
                self.labels.push(l);
            }
            // Unlabelled rows in a partially-labelled stream get class 0;
            // mixing is unusual but should not corrupt row alignment.
            None => self.labels.push(0),
        }
    }

    /// Finalises into an immutable [`Dataset`].
    pub fn finish(self) -> Dataset {
        let labels = if self.any_label {
            Some(self.labels)
        } else {
            None
        };
        Dataset::from_parts(self.schema, self.values, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NOT_PRESENT;

    fn small() -> Dataset {
        let mut b = DatasetBuilder::new(vec!["c".into(), "s".into()]);
        b.push_str_row(&["red", "square"], Some(0)).unwrap();
        b.push_str_row(&["red", "circle"], Some(0)).unwrap();
        b.push_str_row(&["blue", "circle"], Some(1)).unwrap();
        b.finish()
    }

    #[test]
    fn dimensions_and_rows() {
        let ds = small();
        assert_eq!(ds.n_items(), 3);
        assert_eq!(ds.n_attrs(), 2);
        assert_eq!(ds.row(0).len(), 2);
        assert_eq!(ds.rows().count(), 3);
    }

    #[test]
    fn interning_shares_codes_within_attribute() {
        let ds = small();
        assert_eq!(ds.row(0)[0], ds.row(1)[0]); // both "red"
        assert_ne!(ds.row(0)[0], ds.row(2)[0]); // red vs blue
        assert_eq!(ds.row(1)[1], ds.row(2)[1]); // both "circle"
    }

    #[test]
    fn codes_are_per_attribute_namespaces() {
        let mut b = DatasetBuilder::anonymous(2);
        b.push_str_row(&["x", "x"], None).unwrap();
        let ds = b.finish();
        // Same string in different columns gets independent (here equal-valued)
        // ids; equality across columns is meaningless and never compared.
        assert_eq!(ds.row(0)[0], ValueId(0));
        assert_eq!(ds.row(0)[1], ValueId(0));
    }

    #[test]
    fn labels_round_trip() {
        let ds = small();
        assert_eq!(ds.labels(), Some(&[0, 0, 1][..]));
        assert_eq!(ds.n_classes(), 2);
    }

    #[test]
    fn unlabelled_dataset_has_no_labels() {
        let mut b = DatasetBuilder::anonymous(1);
        b.push_str_row(&["v"], None).unwrap();
        let ds = b.finish();
        assert_eq!(ds.labels(), None);
        assert_eq!(ds.n_classes(), 0);
    }

    #[test]
    fn arity_error() {
        let mut b = DatasetBuilder::anonymous(2);
        let err = b.push_str_row(&["only-one"], None).unwrap_err();
        assert_eq!(
            err,
            ArityError {
                expected: 2,
                got: 1
            }
        );
        assert!(err.to_string().contains("2 attributes"));
    }

    #[test]
    fn decode_row_recovers_strings() {
        let ds = small();
        assert_eq!(
            ds.decode_row(2),
            vec!["blue".to_owned(), "circle".to_owned()]
        );
    }

    #[test]
    fn decode_renders_not_present() {
        let mut b = DatasetBuilder::anonymous(2);
        let v = b.schema_mut().dictionary_mut(AttrId(0)).intern("x");
        b.push_encoded_row(&[v, NOT_PRESENT], None).unwrap();
        let ds = b.finish();
        assert_eq!(ds.decode_row(0), vec!["x".to_owned(), "∅".to_owned()]);
    }

    #[test]
    fn present_count_skips_absent() {
        let mut b = DatasetBuilder::anonymous(3);
        let x = b.schema_mut().dictionary_mut(AttrId(0)).intern("x");
        let no = b.schema_mut().dictionary_mut(AttrId(1)).intern("w-0");
        b.schema_mut().set_absent_value(AttrId(1), no);
        let y = b.schema_mut().dictionary_mut(AttrId(2)).intern("y");
        b.push_encoded_row(&[x, no, y], None).unwrap();
        b.push_encoded_row(&[x, no, NOT_PRESENT], None).unwrap();
        let ds = b.finish();
        assert_eq!(ds.present_count(0), 2);
        assert_eq!(ds.present_count(1), 1);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn from_parts_validates_buffer_length() {
        let schema = Schema::anonymous(3);
        let _ = Dataset::from_parts(schema, vec![ValueId(0); 4], None);
    }

    #[test]
    fn value_accessor_matches_row() {
        let ds = small();
        assert_eq!(ds.value(ItemId(1), AttrId(1)), ds.row(1)[1]);
    }
}
