//! Canopy-based search-space reduction — the alternative to LSH discussed in
//! the paper's related work (reference \[15\], McCallum, Nigam & Ungar 2000).
//!
//! Canopies are overlapping item subsets built with a *cheap* approximate
//! distance: pick an unmarked item as a canopy centre, put every item within
//! the loose threshold `T1` into the canopy, and remove items within the
//! tight threshold `T2 ≤ T1` from the candidate-centre pool. Exact distance
//! work then happens only within shared canopies.
//!
//! Plugged into the paper's framework, canopies become just another
//! [`ShortlistProvider`]: the shortlist for an item is the set of clusters
//! currently holding items that share a canopy with it. This lets the
//! ablation experiment compare the paper's MinHash shortlists against the
//! classic canopy alternative with everything else held fixed — the
//! comparison §II alludes to but the paper never runs.
//!
//! The cheap distance used here is the estimated Jaccard distance from short
//! MinHash sketches (so both providers consume the same element sets; only
//! the *candidate generation structure* differs).

use crate::framework::ShortlistProvider;
use lshclust_categorical::{ClusterId, Dataset};
use lshclust_minhash::hashfn::MixHashFamily;
use lshclust_minhash::signature::{estimate_jaccard, SignatureGenerator, SignatureMatrix};

/// Configuration for canopy construction.
#[derive(Clone, Debug)]
pub struct CanopyConfig {
    /// Loose threshold: items with estimated Jaccard *similarity* ≥ `t1_sim`
    /// to a centre join its canopy.
    pub t1_sim: f64,
    /// Tight threshold (≥ `t1_sim`): items this similar to a centre are
    /// removed from the centre pool.
    pub t2_sim: f64,
    /// Sketch length for the cheap distance.
    pub sketch_len: usize,
    /// Hash seed.
    pub seed: u64,
}

impl CanopyConfig {
    /// Defaults: join at 0.3, absorb at 0.6, 32-hash sketches.
    pub fn new() -> Self {
        Self {
            t1_sim: 0.3,
            t2_sim: 0.6,
            sketch_len: 32,
            seed: 0,
        }
    }
}

impl Default for CanopyConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The canopy structure: per-item canopy memberships (CSR) and per-canopy
/// member lists.
pub struct Canopies {
    /// Canopy id lists per item, CSR.
    item_canopies: Vec<u32>,
    item_offsets: Vec<usize>,
    /// Item id lists per canopy.
    members: Vec<Vec<u32>>,
}

impl Canopies {
    /// Builds canopies over `dataset` with the cheap sketch distance.
    ///
    /// Deterministic: centres are chosen in ascending item order (the
    /// classic algorithm says "pick a point at random"; ascending order is a
    /// fixed permutation thereof and keeps runs reproducible).
    pub fn build(dataset: &Dataset, config: &CanopyConfig) -> Self {
        assert!(
            config.t2_sim >= config.t1_sim,
            "tight similarity threshold must be >= loose threshold"
        );
        let n = dataset.n_items();
        let generator = SignatureGenerator::new(MixHashFamily::new(config.sketch_len, config.seed));
        let sketches: SignatureMatrix = generator.dataset_signatures(dataset);

        let mut in_pool = vec![true; n];
        let mut canopies_per_item: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut members: Vec<Vec<u32>> = Vec::new();
        for centre in 0..n {
            if !in_pool[centre] {
                continue;
            }
            let canopy_id = members.len() as u32;
            let mut canopy_members = Vec::new();
            for item in 0..n {
                // Canopy membership considers every item, pooled or not —
                // overlap is the point of canopies.
                let sim = estimate_jaccard(sketches.row(centre), sketches.row(item));
                if sim >= config.t1_sim {
                    canopy_members.push(item as u32);
                    canopies_per_item[item].push(canopy_id);
                    if sim >= config.t2_sim {
                        in_pool[item] = false;
                    }
                }
            }
            members.push(canopy_members);
        }

        // Flatten per-item lists to CSR.
        let mut item_canopies = Vec::new();
        let mut item_offsets = Vec::with_capacity(n + 1);
        item_offsets.push(0);
        for list in &canopies_per_item {
            item_canopies.extend_from_slice(list);
            item_offsets.push(item_canopies.len());
        }
        Self {
            item_canopies,
            item_offsets,
            members,
        }
    }

    /// Number of canopies.
    pub fn n_canopies(&self) -> usize {
        self.members.len()
    }

    /// Canopy ids of `item`.
    pub fn canopies_of(&self, item: u32) -> &[u32] {
        let lo = self.item_offsets[item as usize];
        let hi = self.item_offsets[item as usize + 1];
        &self.item_canopies[lo..hi]
    }

    /// Members of canopy `c`.
    pub fn members_of(&self, canopy: u32) -> &[u32] {
        &self.members[canopy as usize]
    }

    /// Mean canopies per item (diagnostics).
    pub fn mean_memberships(&self) -> f64 {
        let n = self.item_offsets.len() - 1;
        if n == 0 {
            return 0.0;
        }
        self.item_canopies.len() as f64 / n as f64
    }
}

/// [`ShortlistProvider`] backed by canopies: the shortlist for an item is
/// the set of clusters of all items sharing at least one canopy with it.
pub struct CanopyProvider {
    canopies: Canopies,
    cluster_of: Vec<ClusterId>,
    seen_clusters: lshclust_minhash::FastSet<u32>,
}

impl CanopyProvider {
    /// Wraps built canopies with initial cluster references.
    pub fn new(canopies: Canopies, initial: &[ClusterId]) -> Self {
        Self {
            canopies,
            cluster_of: initial.to_vec(),
            seen_clusters: Default::default(),
        }
    }

    /// The canopy structure.
    pub fn canopies(&self) -> &Canopies {
        &self.canopies
    }
}

impl ShortlistProvider for CanopyProvider {
    fn shortlist(&mut self, item: u32, out: &mut Vec<ClusterId>) {
        out.clear();
        self.seen_clusters.clear();
        for &canopy in self.canopies.canopies_of(item) {
            for &other in self.canopies.members_of(canopy) {
                let c = self.cluster_of[other as usize];
                if self.seen_clusters.insert(c.0) {
                    out.push(c);
                }
            }
        }
    }

    fn record_assignment(&mut self, item: u32, cluster: ClusterId) {
        self.cluster_of[item as usize] = cluster;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == 0 {
                            format!("g{g}n{i}")
                        } else {
                            format!("g{g}a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn every_item_is_in_some_canopy() {
        let ds = blob_dataset(3, 5, 8);
        let canopies = Canopies::build(&ds, &CanopyConfig::new());
        for item in 0..ds.n_items() as u32 {
            assert!(
                !canopies.canopies_of(item).is_empty(),
                "item {item} canopy-less"
            );
        }
        assert!(canopies.mean_memberships() >= 1.0);
    }

    #[test]
    fn blob_members_share_canopies() {
        let ds = blob_dataset(3, 5, 8);
        let canopies = Canopies::build(&ds, &CanopyConfig::new());
        // Items 0 and 1 (same blob, Jaccard ≈ 7/9) must co-occur.
        let a = canopies.canopies_of(0);
        let b = canopies.canopies_of(1);
        assert!(a.iter().any(|c| b.contains(c)), "{a:?} vs {b:?}");
    }

    #[test]
    fn distinct_blobs_get_distinct_canopies() {
        let ds = blob_dataset(3, 5, 8);
        let canopies = Canopies::build(&ds, &CanopyConfig::new());
        assert!(
            canopies.n_canopies() >= 3,
            "only {} canopies",
            canopies.n_canopies()
        );
        // Items of different blobs (Jaccard 0) never share a canopy.
        let a = canopies.canopies_of(0);
        let b = canopies.canopies_of(5);
        assert!(!a.iter().any(|c| b.contains(c)));
    }

    #[test]
    fn provider_shortlists_within_canopy_clusters() {
        let ds = blob_dataset(2, 4, 6);
        let canopies = Canopies::build(&ds, &CanopyConfig::new());
        let initial: Vec<ClusterId> = (0..8).map(|i| ClusterId(i / 4)).collect();
        let mut provider = CanopyProvider::new(canopies, &initial);
        let mut out = Vec::new();
        provider.shortlist(0, &mut out);
        assert!(out.contains(&ClusterId(0)));
        assert!(
            !out.contains(&ClusterId(1)),
            "cross-blob cluster leaked: {out:?}"
        );
    }

    #[test]
    fn provider_tracks_reassignments() {
        let ds = blob_dataset(2, 4, 6);
        let canopies = Canopies::build(&ds, &CanopyConfig::new());
        let initial: Vec<ClusterId> = vec![ClusterId(0); 8];
        let mut provider = CanopyProvider::new(canopies, &initial);
        provider.record_assignment(1, ClusterId(5));
        let mut out = Vec::new();
        provider.shortlist(0, &mut out);
        assert!(out.contains(&ClusterId(5)));
    }

    #[test]
    fn canopy_accelerated_clustering_works_end_to_end() {
        use crate::framework::{fit, CentroidModel, StopPolicy};
        use crate::mhkmodes::KModesModel;
        use lshclust_kmodes::assign::assign_all_full;
        use lshclust_kmodes::init::{initial_modes, InitMethod};

        let ds = blob_dataset(4, 6, 8);
        let k = 4;
        let modes = initial_modes(&ds, k, InitMethod::RandomItems, 3);
        let mut assignments = vec![ClusterId(0); ds.n_items()];
        let mut model = KModesModel::new(&ds, modes);
        assign_all_full(&ds, model.modes(), &mut assignments);
        model.update_centroids(&assignments);
        let canopies = Canopies::build(&ds, &CanopyConfig::new());
        let mut provider = CanopyProvider::new(canopies, &assignments);
        let run = fit(
            &mut model,
            &mut provider,
            assignments,
            std::time::Duration::ZERO,
            &StopPolicy::default(),
            true,
        );
        assert!(run.summary.converged);
        // Blob purity: same-blob items share clusters.
        for g in 0..4 {
            let first = run.assignments[g * 6];
            for i in 0..6 {
                assert_eq!(run.assignments[g * 6 + i], first, "blob {g} split");
            }
        }
    }

    #[test]
    #[should_panic(expected = "tight similarity threshold")]
    fn thresholds_validated() {
        let ds = blob_dataset(1, 2, 3);
        let mut cfg = CanopyConfig::new();
        cfg.t2_sim = 0.1; // below t1
        let _ = Canopies::build(&ds, &cfg);
    }
}
