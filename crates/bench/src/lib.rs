//! Experiment harness: everything needed to regenerate the paper's tables
//! and figures, shared between the `experiments` binary and the Criterion
//! micro-benchmarks.
//!
//! * [`scale`] — the paper's dataset shapes and the `--scale` machinery that
//!   shrinks them for laptop runs while preserving the n : k : m ratios,
//! * [`synthetic`] — paired baseline/MH-K-Modes runs on datgen data
//!   (Figs. 2–8),
//! * [`textexp`] — the Yahoo!-Answers-like TF-IDF pipeline runs
//!   (Figs. 9–10),
//! * [`figures`] — rendering each table/figure as aligned text + CSV,
//! * [`ablate`] -- design-choice ablations and the LSH-vs-canopy-vs-mini-batch comparison,
//! * [`threads`] — the thread-scaling experiment behind `BENCH_threads.json`
//!   (facade-driven, all four families),
//! * [`minibatch`] — the fit-discipline comparison behind
//!   `BENCH_minibatch.json` (full vs mini-batch vs shortlisted mini-batch),
//! * [`serve`] — the serving-throughput experiment behind
//!   `BENCH_serve.json` (coalesced `ModelServer` batches vs
//!   one-row-per-call, per worker count and modality),
//! * [`shard`] — the shard-scaling experiment behind `BENCH_shard.json`
//!   (fit wall-time and peak per-shard item count vs `ClusterSpec::shards`),
//! * [`artifact`] — the persistence experiment behind
//!   `BENCH_artifact.json` (v1 JSON vs v2 flat binary load latency,
//!   hot-reload percentiles under load, cache-hit vs refit wall time),
//! * [`closures`] — the cluster-closure experiment behind
//!   `BENCH_closures.json` (per-iteration assign wall-time and skip ratio,
//!   closures on vs off, with a byte-identity guard),
//! * [`sim`] — the similarity-workloads experiment behind `BENCH_sim.json`
//!   (candidate-pair volume and verify time vs brute-force all-pairs, plus
//!   recall against the exact join, with a committed recall floor),
//! * [`mod@env`] — the shared [`env::BenchEnv`] header every `BENCH_*.json`
//!   artifact embeds, so the report schemas stop drifting,
//! * [`table`] — a tiny fixed-width table printer.
//!
//! The experiment modules drive the *internal* per-algorithm configs
//! (`MhKModesConfig`, `KModesConfig`, …) rather than the `lshclust` facade
//! on purpose: the paper's controlled comparisons share one set of initial
//! modes across baseline and accelerated runs (`fit_from`), which the facade
//! deliberately does not expose. The user-facing `cluster` binary goes
//! through the facade (`ClusterSpec` / `Clusterer`), including JSON spec
//! input (`--spec`) and JSON run reports (`--json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablate;
pub mod artifact;
pub mod closures;
pub mod env;
pub mod figures;
pub mod minibatch;
pub mod scale;
pub mod serve;
pub mod shard;
pub mod sim;
pub mod synthetic;
pub mod table;
pub mod textexp;
pub mod threads;
