//! Mini-batch K-Modes — the categorical adaptation of Sculley's web-scale
//! mini-batch K-Means (reference \[16\] of the paper's related work).
//!
//! Each step samples a batch of `b` items, assigns the whole batch to the
//! nearest modes **as of the start of the step** (a Jacobi-style batch, so
//! the result is independent of the order the batch is processed in), and
//! then nudges only the touched clusters' modes via per-cluster frequency
//! tables ([`FrequencySketch`]). The per-step cost is `O(b·k·m)` instead of
//! `O(n·k·m)`, trading assignment completeness for speed — the *orthogonal*
//! acceleration route to the paper's shortlist idea.
//!
//! This module is the dependency-light **full-search baseline**. The
//! LSH-shortlisted variant — same sampling stream, same sketch, but batch
//! assignment restricted to clusters whose centroids collide with the item
//! in an LSH index that is periodically refreshed as the modes drift — lives
//! in `lshclust_core::minibatch`, wired into the `lshclust` facade as
//! `Fit::MiniBatch`.

use crate::assign::best_cluster_full;
use crate::init::{initial_modes, InitMethod};
use crate::modes::Modes;
use lshclust_categorical::{ClusterId, Dataset, ValueId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// Salt XORed into the seed for batch sampling; shared with the shortlisted
/// engine in `lshclust_core::minibatch` so both draw identical batches at
/// equal seeds (the controlled comparison the bench harness relies on).
pub const BATCH_SAMPLING_SALT: u64 = 0x6d62_6b6d; // "mbkm"

/// Configuration for mini-batch K-Modes.
#[derive(Clone, Debug)]
pub struct MiniBatchConfig {
    /// Number of clusters.
    pub k: usize,
    /// Items sampled per step.
    pub batch_size: usize,
    /// Number of mini-batch steps.
    pub n_steps: usize,
    /// Centroid initialisation.
    pub init: InitMethod,
    /// RNG seed (initialisation and batch sampling).
    pub seed: u64,
    /// Whether `n_steps` was set explicitly (builder bookkeeping: a later
    /// [`Self::batch_size`] call re-derives the heuristic step count unless
    /// the caller pinned one).
    steps_explicit: bool,
}

impl MiniBatchConfig {
    /// The `10·k / batch_size` step heuristic, floored at 50 steps.
    pub fn default_n_steps(k: usize, batch_size: usize) -> usize {
        (10 * k / batch_size.max(1)).max(50)
    }

    /// Defaults: batch of 256 and the [`Self::default_n_steps`] heuristic.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            batch_size: 256,
            n_steps: Self::default_n_steps(k, 256),
            init: InitMethod::RandomItems,
            seed: 0,
            steps_explicit: false,
        }
    }

    /// Sets the batch size. Unless [`Self::n_steps`] was called, the step
    /// count is re-derived from the *new* batch size — previously it stayed
    /// at the heuristic for the default batch of 256, leaving a stale count.
    pub fn batch_size(mut self, b: usize) -> Self {
        assert!(b > 0);
        self.batch_size = b;
        if !self.steps_explicit {
            self.n_steps = Self::default_n_steps(self.k, b);
        }
        self
    }

    /// Sets the number of steps (disables the heuristic).
    pub fn n_steps(mut self, n: usize) -> Self {
        self.n_steps = n;
        self.steps_explicit = true;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a mini-batch K-Modes run.
#[derive(Clone, Debug)]
pub struct MiniBatchResult {
    /// Final cluster per item (from one final full assignment pass).
    pub assignments: Vec<ClusterId>,
    /// Final modes.
    pub modes: Modes,
    /// Steps executed.
    pub n_steps: usize,
    /// Total wall-clock time (steps + final assignment).
    pub elapsed: std::time::Duration,
}

/// Per-cluster streaming frequency tables backing the mode updates — the
/// categorical analogue of Sculley's per-centre counts. Public so the
/// LSH-shortlisted mini-batch engine (`lshclust_core::minibatch`) applies
/// byte-identical nudges to this baseline.
pub struct FrequencySketch {
    /// `k × m` maps: value → count of batch-assigned occurrences.
    tables: Vec<HashMap<u32, u32>>,
    n_attrs: usize,
    /// The refreshed mode of the cluster last absorbed into.
    mode_buf: Vec<ValueId>,
}

impl FrequencySketch {
    /// Empty tables for `k` clusters over `n_attrs` attributes.
    pub fn new(k: usize, n_attrs: usize) -> Self {
        Self {
            tables: (0..k * n_attrs).map(|_| HashMap::new()).collect(),
            n_attrs,
            mode_buf: vec![ValueId(0); n_attrs],
        }
    }

    /// Counts `row` into cluster `c` and returns the cluster's refreshed
    /// mode: for each attribute the current argmax value (highest count,
    /// ties to the smallest value id — deterministic).
    pub fn absorb(&mut self, c: ClusterId, row: &[ValueId]) -> &[ValueId] {
        assert_eq!(row.len(), self.n_attrs);
        for (a, &v) in row.iter().enumerate() {
            let table = &mut self.tables[c.idx() * self.n_attrs + a];
            *table.entry(v.0).or_insert(0) += 1;
            // Deterministic argmax: highest count, then smallest value id.
            let best = table
                .iter()
                .map(|(&val, &count)| (count, std::cmp::Reverse(val)))
                .max()
                .map(|(_, std::cmp::Reverse(val))| ValueId(val))
                .expect("table non-empty after insert");
            self.mode_buf[a] = best;
        }
        &self.mode_buf
    }
}

/// Runs mini-batch K-Modes (full search within each batch).
pub fn minibatch_kmodes(dataset: &Dataset, config: &MiniBatchConfig) -> MiniBatchResult {
    assert!(config.k > 0 && config.k <= dataset.n_items());
    let start = Instant::now();
    let n = dataset.n_items();
    let m = dataset.n_attrs();
    let b = config.batch_size.min(n);
    let mut rng = StdRng::seed_from_u64(config.seed ^ BATCH_SAMPLING_SALT);
    let mut modes = initial_modes(dataset, config.k, config.init, config.seed);
    let mut sketch = FrequencySketch::new(config.k, m);
    let mut batch: Vec<u32> = Vec::with_capacity(b);
    let mut chosen: Vec<ClusterId> = Vec::with_capacity(b);

    for _ in 0..config.n_steps {
        // Sample, then assign the whole batch against the step's frozen
        // modes (Jacobi-within-batch: no nudge is visible to a later item of
        // the same batch, so the step is order- and thread-independent).
        batch.clear();
        batch.extend((0..b).map(|_| rng.random_range(0..n) as u32));
        chosen.clear();
        chosen.extend(
            batch
                .iter()
                .map(|&item| best_cluster_full(dataset.row(item as usize), &modes).0),
        );
        // Apply the nudges in batch order (centre "nudge" per absorbed item).
        for (&item, &c) in batch.iter().zip(&chosen) {
            let mode = sketch.absorb(c, dataset.row(item as usize));
            modes.set_mode(c, mode);
        }
    }

    // One final full pass so the result is a complete clustering.
    let mut assignments = vec![ClusterId(0); n];
    crate::assign::assign_all_full(dataset, &modes, &mut assignments);
    MiniBatchResult {
        assignments,
        modes,
        n_steps: config.n_steps,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == 0 {
                            format!("g{g}n{i}")
                        } else {
                            format!("g{g}a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn separates_blobs() {
        let ds = blob_dataset(3, 10, 6);
        let result = minibatch_kmodes(
            &ds,
            &MiniBatchConfig::new(3).batch_size(16).n_steps(30).seed(0),
        );
        for g in 0..3 {
            let first = result.assignments[g * 10];
            for i in 0..10 {
                assert_eq!(result.assignments[g * 10 + i], first, "blob {g} split");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = blob_dataset(2, 8, 5);
        let cfg = MiniBatchConfig::new(2).batch_size(8).n_steps(10).seed(7);
        let a = minibatch_kmodes(&ds, &cfg);
        let b = minibatch_kmodes(&ds, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.modes, b.modes);
    }

    #[test]
    fn final_assignment_is_consistent_with_modes() {
        let ds = blob_dataset(2, 6, 4);
        let result = minibatch_kmodes(
            &ds,
            &MiniBatchConfig::new(2).batch_size(4).n_steps(20).seed(3),
        );
        for i in 0..ds.n_items() {
            let (best, _) = best_cluster_full(ds.row(i), &result.modes);
            assert_eq!(result.assignments[i], best);
        }
    }

    #[test]
    fn sketch_tracks_majority() {
        let mut sketch = FrequencySketch::new(1, 2);
        let mode = sketch
            .absorb(ClusterId(0), &[ValueId(5), ValueId(1)])
            .to_vec();
        assert_eq!(mode, vec![ValueId(5), ValueId(1)]);
        sketch.absorb(ClusterId(0), &[ValueId(7), ValueId(1)]);
        let mode = sketch
            .absorb(ClusterId(0), &[ValueId(7), ValueId(2)])
            .to_vec();
        assert_eq!(mode[0], ValueId(7)); // 7 seen twice, 5 once
        assert_eq!(mode[1], ValueId(1)); // 1 twice, 2 once
    }

    #[test]
    fn sketch_tie_breaks_to_smallest_value() {
        let mut sketch = FrequencySketch::new(1, 1);
        sketch.absorb(ClusterId(0), &[ValueId(9)]);
        let mode = sketch.absorb(ClusterId(0), &[ValueId(4)]).to_vec();
        // 1–1 tie: the smaller id must win.
        assert_eq!(mode[0], ValueId(4));
    }

    #[test]
    fn handles_batch_larger_than_dataset() {
        let ds = blob_dataset(2, 3, 4);
        let result = minibatch_kmodes(
            &ds,
            &MiniBatchConfig::new(2).batch_size(100).n_steps(5).seed(2),
        );
        assert_eq!(result.assignments.len(), 6);
    }

    #[test]
    fn batch_size_rederives_the_step_heuristic() {
        // The regression this pins: `new` computed the heuristic from the
        // literal default batch of 256, and a later `batch_size(b)` left
        // that stale count in place.
        let small_batch = MiniBatchConfig::new(512).batch_size(8);
        assert_eq!(
            small_batch.n_steps,
            MiniBatchConfig::default_n_steps(512, 8),
            "step heuristic must follow the actual batch size"
        );
        assert_eq!(small_batch.n_steps, 640); // 10·512/8
        let large_batch = MiniBatchConfig::new(512).batch_size(4096);
        assert_eq!(large_batch.n_steps, 50); // floor kicks in
    }

    #[test]
    fn explicit_n_steps_survives_batch_size_changes() {
        let cfg = MiniBatchConfig::new(512).n_steps(7).batch_size(8);
        assert_eq!(cfg.n_steps, 7, "explicit step count must not be clobbered");
        // Order-independence: setting the batch first changes nothing.
        let cfg = MiniBatchConfig::new(512).batch_size(8).n_steps(7);
        assert_eq!(cfg.n_steps, 7);
    }
}
