//! The paper's dataset shapes and the `--scale` machinery.
//!
//! The paper's synthetic experiments ran for hundreds of hours single-
//! threaded; we preserve every *ratio* (items per cluster, attribute counts,
//! rule fractions, banding parameters) and shrink item/cluster counts by a
//! configurable factor (DESIGN.md §2). `--scale 1.0` reproduces the paper's
//! exact sizes.

use lshclust_minhash::Banding;

/// Shape of a synthetic experiment before scaling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyntheticShape {
    /// Items (paper sizes: 90 000 / 250 000).
    pub n_items: usize,
    /// Clusters (paper sizes: 20 000 / 40 000).
    pub n_clusters: usize,
    /// Attributes (paper sizes: 100 / 200 / 400) — never scaled, attribute
    /// count is itself a studied variable.
    pub n_attrs: usize,
}

impl SyntheticShape {
    /// Applies a scale factor to items and clusters, preserving their ratio.
    /// Clusters are floored at 2 and items at `2 × clusters`.
    pub fn scaled(&self, factor: f64) -> SyntheticShape {
        assert!(factor > 0.0 && factor <= 1.0, "scale must be in (0, 1]");
        let n_clusters = ((self.n_clusters as f64 * factor).round() as usize).max(2);
        let n_items = ((self.n_items as f64 * factor).round() as usize).max(n_clusters * 2);
        SyntheticShape {
            n_items,
            n_clusters,
            n_attrs: self.n_attrs,
        }
    }
}

/// Fig. 2: 90 000 items × 100 attrs × 20 000 clusters.
pub const SHAPE_FIG2: SyntheticShape = SyntheticShape {
    n_items: 90_000,
    n_clusters: 20_000,
    n_attrs: 100,
};
/// Fig. 3: 40 000 clusters.
pub const SHAPE_FIG3: SyntheticShape = SyntheticShape {
    n_items: 90_000,
    n_clusters: 40_000,
    n_attrs: 100,
};
/// Fig. 4: 250 000 items.
pub const SHAPE_FIG4: SyntheticShape = SyntheticShape {
    n_items: 250_000,
    n_clusters: 20_000,
    n_attrs: 100,
};
/// Fig. 5: 200 attributes.
pub const SHAPE_FIG5: SyntheticShape = SyntheticShape {
    n_items: 90_000,
    n_clusters: 20_000,
    n_attrs: 200,
};
/// Fig. 6c's widest point: 400 attributes.
pub const SHAPE_400ATTR: SyntheticShape = SyntheticShape {
    n_items: 90_000,
    n_clusters: 20_000,
    n_attrs: 400,
};
/// Fig. 6b's second point: 250 000 items × 40 000 clusters.
pub const SHAPE_250K_40K: SyntheticShape = SyntheticShape {
    n_items: 250_000,
    n_clusters: 40_000,
    n_attrs: 100,
};

/// The banding parameter sets the paper sweeps, by label.
pub fn banding_by_label(label: &str) -> Option<Banding> {
    match label {
        "1b1r" => Some(Banding::new(1, 1)),
        "20b2r" => Some(Banding::new(20, 2)),
        "20b5r" => Some(Banding::new(20, 5)),
        "50b5r" => Some(Banding::new(50, 5)),
        _ => None,
    }
}

/// Experiment-wide settings parsed from the command line.
#[derive(Clone, Debug)]
pub struct Settings {
    /// Scale factor in `(0, 1]`.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Optional directory for CSV output.
    pub out_dir: Option<std::path::PathBuf>,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            scale: 0.05,
            seed: 42,
            out_dir: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_preserves_ratio() {
        let s = SHAPE_FIG2.scaled(0.1);
        assert_eq!(s.n_clusters, 2_000);
        assert_eq!(s.n_items, 9_000);
        assert_eq!(s.n_attrs, 100);
        // items per cluster unchanged: 4.5.
        let ratio = s.n_items as f64 / s.n_clusters as f64;
        assert!((ratio - 4.5).abs() < 0.01);
    }

    #[test]
    fn unit_scale_is_identity() {
        assert_eq!(SHAPE_FIG4.scaled(1.0), SHAPE_FIG4);
    }

    #[test]
    fn tiny_scale_respects_floors() {
        let s = SHAPE_FIG2.scaled(0.00001);
        assert!(s.n_clusters >= 2);
        assert!(s.n_items >= s.n_clusters * 2);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn oversized_scale_rejected() {
        let _ = SHAPE_FIG2.scaled(1.5);
    }

    #[test]
    fn banding_labels_round_trip() {
        for label in ["1b1r", "20b2r", "20b5r", "50b5r"] {
            let b = banding_by_label(label).unwrap();
            assert_eq!(b.to_string(), label);
        }
        assert!(banding_by_label("nope").is_none());
    }

    #[test]
    fn attrs_never_scaled() {
        assert_eq!(SHAPE_400ATTR.scaled(0.01).n_attrs, 400);
    }
}
