//! The algorithm-agnostic acceleration framework.
//!
//! The paper presents its idea as "a general framework to accelerate existing
//! clustering algorithms … applied to a set of centroid-based clustering
//! algorithms that assign an object to the most similar cluster". This module
//! is that framework, reduced to two traits and one driver:
//!
//! * a [`CentroidModel`] owns the centroids and knows how to (a) find the
//!   best centroid for an item among a candidate set, and (b) refresh the
//!   centroids from assignments;
//! * a [`ShortlistProvider`] owns the LSH index and knows how to (a) produce
//!   the candidate-cluster shortlist for an item and (b) record assignment
//!   changes (Algorithm 2's cluster-reference update);
//! * [`fit`] alternates shortlisted assignment passes with centroid updates
//!   until convergence, instrumenting every pass.
//!
//! `MH-K-Modes` is `fit` applied to a K-Modes model and a MinHash provider;
//! the K-Means/SimHash extension reuses the identical driver, demonstrating
//! the framework's generality.

use lshclust_categorical::ClusterId;
use lshclust_kmodes::stats::{IterationStats, RunSummary};
use std::time::Instant;

/// A centroid-based clustering algorithm, abstracted to what the framework
/// needs. Distances are surfaced as `f64` so categorical (integer mismatch
/// counts) and numeric (squared Euclidean) models fit the same interface.
pub trait CentroidModel {
    /// Owned copy of the centroid state. The driver snapshots it before each
    /// pass so a cost-increasing final pass can be rolled back (the paper's
    /// "cost has minimised" criterion keeps the *minimising* state).
    type Snapshot;

    /// Number of clusters `k`.
    fn k(&self) -> usize;

    /// Number of items.
    fn n_items(&self) -> usize;

    /// Full search: the best cluster for `item` over all `k` centroids.
    fn best_full(&self, item: u32) -> (ClusterId, f64);

    /// Restricted search over `candidates`; `None` iff the slice is empty.
    fn best_among(&self, item: u32, candidates: &[ClusterId]) -> Option<(ClusterId, f64)>;

    /// Recomputes all centroids from `assignments` and reports which
    /// clusters' centroid values actually **changed** — the seed of the next
    /// iteration's [`ActivitySet`]. A cluster whose recomputed centroid
    /// equals its previous value (including empty clusters, which keep their
    /// centroid) must come back inactive, or the closure engine loses its
    /// skipping power; a cluster that changed must come back active, or
    /// byte-identity breaks.
    fn update_centroids(&mut self, assignments: &[ClusterId]) -> ActivitySet;

    /// Like [`Self::update_centroids`], but free to fan the recomputation
    /// over `threads` workers. Implementations must stay **deterministic**:
    /// the result may not depend on the thread count (the per-family models
    /// recompute cluster-by-cluster, which is bit-identical to the serial
    /// update at any thread count). The default delegates to the serial
    /// update.
    fn update_centroids_parallel(
        &mut self,
        assignments: &[ClusterId],
        threads: usize,
    ) -> ActivitySet {
        let _ = threads;
        self.update_centroids(assignments)
    }

    /// Captures the current centroid state for [`Self::restore_centroids`].
    fn snapshot_centroids(&self) -> Self::Snapshot;

    /// Restores a state captured by [`Self::snapshot_centroids`].
    fn restore_centroids(&mut self, snapshot: Self::Snapshot);

    /// Total cost of `assignments` under the current centroids.
    fn total_cost(&self, assignments: &[ClusterId]) -> f64;
}

/// The cluster search-space reducer (the LSH index of the paper).
pub trait ShortlistProvider {
    /// Writes the candidate clusters for `item` into `out` (cleared first).
    ///
    /// Implementations should include the item's *current* cluster whenever
    /// the item is indexed (self-collision) — the framework falls back to
    /// "stay put" if the shortlist comes back empty.
    fn shortlist(&mut self, item: u32, out: &mut Vec<ClusterId>);

    /// Records that `item` is now assigned to `cluster` (Algorithm 2's
    /// reference update, performed after every move).
    fn record_assignment(&mut self, item: u32, cluster: ClusterId);
}

/// Convergence controls for [`fit`] — the single iteration policy shared by
/// every algorithm family (the per-config `max_iterations` fields this
/// replaces now live here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StopPolicy {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Stop when an iteration makes no moves.
    pub stop_on_no_moves: bool,
    /// Stop when the cost fails to decrease (the paper's "cost has
    /// minimised" criterion). Shortlisted assignment is not guaranteed
    /// monotone, so this also guards against oscillation.
    pub stop_on_cost_increase: bool,
}

impl Default for StopPolicy {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            stop_on_no_moves: true,
            stop_on_cost_increase: true,
        }
    }
}

impl StopPolicy {
    /// The default policy with an explicit iteration cap — the common case.
    pub fn max_iterations(n: usize) -> Self {
        Self {
            max_iterations: n,
            ..Self::default()
        }
    }
}

serde::impl_serde_struct!(StopPolicy {
    max_iterations,
    stop_on_no_moves,
    stop_on_cost_increase
});

/// Which clusters are **active** — their centroid moved, or an item moved in
/// or out of them — going into an assignment pass. The heart of the
/// cluster-closure engine ("Fast Approximate K-Means via Cluster Closures"):
/// an item whose cached candidate shortlist touches no active cluster cannot
/// change its answer, so the pass skips it wholesale while staying
/// **byte-identical** to full re-evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActivitySet {
    active: Vec<bool>,
    count: usize,
}

impl ActivitySet {
    /// All `k` clusters active — the first iteration's state (every centroid
    /// was just initialised or refreshed, nothing can be skipped).
    pub fn all(k: usize) -> Self {
        Self {
            active: vec![true; k],
            count: k,
        }
    }

    /// No cluster active.
    pub fn none(k: usize) -> Self {
        Self {
            active: vec![false; k],
            count: 0,
        }
    }

    /// Rebuilds a set from the active cluster ids of [`Self::to_clusters`]
    /// (the shard wire form). Out-of-range ids are ignored.
    pub fn from_clusters(k: usize, clusters: &[u32]) -> Self {
        let mut set = Self::none(k);
        for &c in clusters {
            if (c as usize) < k {
                set.mark(ClusterId(c));
            }
        }
        set
    }

    /// Number of clusters the set ranges over.
    pub fn k(&self) -> usize {
        self.active.len()
    }

    /// Marks `cluster` active (idempotent).
    pub fn mark(&mut self, cluster: ClusterId) {
        let slot = &mut self.active[cluster.idx()];
        if !*slot {
            *slot = true;
            self.count += 1;
        }
    }

    /// Whether `cluster` is active.
    pub fn is_active(&self, cluster: ClusterId) -> bool {
        self.active[cluster.idx()]
    }

    /// Number of active clusters.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether any of `clusters` is active — the per-item skip test. An
    /// empty slice has no active member, and an item whose shortlist is
    /// empty is always skippable (the legacy pass keeps its assignment on an
    /// empty shortlist too).
    pub fn any_active_in(&self, clusters: &[ClusterId]) -> bool {
        clusters.iter().any(|&c| self.active[c.idx()])
    }

    /// The active cluster ids in ascending order (the shard wire form).
    pub fn to_clusters(&self) -> Vec<u32> {
        self.active
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(c, _)| c as u32)
            .collect()
    }
}

/// Per-item cached shortlists for the closure engine. An entry is the exact
/// candidate list the provider returned the last time the item was
/// re-evaluated; while every cached cluster stays inactive, a fresh query
/// would return the same list (the index's bucketing is static and no
/// co-bucketed item has moved), so the cache substitutes for the query.
pub struct ShortlistCache {
    pub(crate) lists: Vec<Vec<ClusterId>>,
    pub(crate) valid: Vec<bool>,
}

impl ShortlistCache {
    /// An empty (all-invalid) cache for `n` items.
    pub fn new(n: usize) -> Self {
        Self {
            lists: vec![Vec::new(); n],
            valid: vec![false; n],
        }
    }

    /// Invalidates every entry (after a full-assignment reset, e.g. a shard
    /// worker's `AssignFull`), keeping the allocated lists for reuse.
    pub fn invalidate_all(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
    }

    /// Number of items the cache covers.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the cache covers zero items.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }
}

/// What one assignment pass did — returned by [`assign_once`] and
/// [`assign_full`] so callers can drive their own convergence logic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AssignOutcome {
    /// Items that changed cluster during the pass.
    pub moves: usize,
    /// Summed shortlist sizes over all items (for `avg_candidates`; equals
    /// `n × k` for a full-search pass). Skipped items contribute their
    /// cached shortlist length — exactly what a fresh query would have
    /// returned — so the average is identical with closures on or off.
    pub shortlist_total: usize,
    /// Items whose re-evaluation the closure engine skipped (`0` for
    /// closure-free passes).
    pub skipped: usize,
}

/// One **shortlisted assignment pass** (Algorithm 2's modified assignment
/// step, extracted from the [`fit`] loop so serving paths can reuse it):
/// each item is shortlisted, searched among its candidates, and moved —
/// with the provider's cluster reference updated — when a better cluster is
/// found. Items with an empty shortlist keep their current assignment.
///
/// The pass is Gauss–Seidel: a move is visible to later items of the same
/// pass through the provider's cluster references.
pub fn assign_once<M: CentroidModel, P: ShortlistProvider>(
    model: &M,
    provider: &mut P,
    assignments: &mut [ClusterId],
) -> AssignOutcome {
    assert_eq!(
        assignments.len(),
        model.n_items(),
        "one starting assignment per item"
    );
    let mut outcome = AssignOutcome::default();
    let mut shortlist = Vec::new();
    for item in 0..assignments.len() as u32 {
        provider.shortlist(item, &mut shortlist);
        outcome.shortlist_total += shortlist.len();
        let current = assignments[item as usize];
        let chosen = match model.best_among(item, &shortlist) {
            Some((c, _)) => c,
            // Empty shortlist (only possible when self-collision is
            // disabled): keep the current assignment.
            None => current,
        };
        if chosen != current {
            assignments[item as usize] = chosen;
            outcome.moves += 1;
            provider.record_assignment(item, chosen);
        }
    }
    outcome
}

/// [`assign_once`] with cluster-closure skipping: an item whose cached
/// shortlist touches no active cluster keeps its assignment without being
/// re-shortlisted or re-scored — **byte-identical** to the plain pass.
///
/// Why identity holds for the Gauss–Seidel pass: an item's fresh shortlist
/// (content *and* order) and its candidate distances can only differ from
/// its cached evaluation if (a) a cached cluster's centroid changed, or
/// (b) some co-bucketed item changed cluster since the cache was filled.
/// (a) is covered because centroid changes are marked active by
/// `update_centroids`. For (b), consider the *first* co-bucketed move after
/// the cache fill: the moving item's old cluster at that moment is one the
/// cached shortlist already contains (a co-bucketed item's cluster appears
/// in the shortlist), and both endpoints of every move are marked active —
/// by the previous pass's endpoint diff in `drive`, or by `live` below
/// when the move happens *earlier in the same pass* (Gauss–Seidel makes
/// moves visible to later items immediately, hence the live marking).
/// Either way the skip test fails and the item is re-evaluated before any
/// stale answer could be returned.
pub fn assign_once_closures<M: CentroidModel, P: ShortlistProvider>(
    model: &M,
    provider: &mut P,
    assignments: &mut [ClusterId],
    activity: &ActivitySet,
    cache: &mut ShortlistCache,
) -> AssignOutcome {
    assert_eq!(
        assignments.len(),
        model.n_items(),
        "one starting assignment per item"
    );
    assert_eq!(cache.len(), assignments.len(), "one cache entry per item");
    let mut outcome = AssignOutcome::default();
    let mut live = activity.clone();
    for item in 0..assignments.len() as u32 {
        let slot = item as usize;
        if cache.valid[slot] && !live.any_active_in(&cache.lists[slot]) {
            outcome.shortlist_total += cache.lists[slot].len();
            outcome.skipped += 1;
            continue;
        }
        provider.shortlist(item, &mut cache.lists[slot]);
        cache.valid[slot] = true;
        outcome.shortlist_total += cache.lists[slot].len();
        let current = assignments[slot];
        let chosen = match model.best_among(item, &cache.lists[slot]) {
            Some((c, _)) => c,
            None => current,
        };
        if chosen != current {
            assignments[slot] = chosen;
            outcome.moves += 1;
            provider.record_assignment(item, chosen);
            // Later items of this pass see the move through the provider's
            // references; both endpoints go active immediately.
            live.mark(current);
            live.mark(chosen);
        }
    }
    outcome
}

/// One **full-search assignment pass** over all `k` centroids — the
/// baseline step every family shares, and the initial pass of every
/// accelerated run (the paper's step 2).
pub fn assign_full<M: CentroidModel>(model: &M, assignments: &mut [ClusterId]) -> AssignOutcome {
    assert_eq!(
        assignments.len(),
        model.n_items(),
        "one starting assignment per item"
    );
    let mut moves = 0usize;
    for (item, slot) in assignments.iter_mut().enumerate() {
        let (c, _) = model.best_full(item as u32);
        if c != *slot {
            moves += 1;
            *slot = c;
        }
    }
    AssignOutcome {
        moves,
        shortlist_total: assignments.len() * model.k(),
        skipped: 0,
    }
}

/// Outcome of an accelerated run.
#[derive(Clone, Debug)]
pub struct AcceleratedRun {
    /// Final cluster per item.
    pub assignments: Vec<ClusterId>,
    /// Instrumentation (per-iteration time, moves, avg shortlist, cost).
    pub summary: RunSummary,
}

/// Drives shortlisted assignment / centroid update rounds to convergence.
///
/// `assignments` supplies the starting state (for MH-K-Modes, the result of
/// the initial full assignment pass); `setup` is the time already spent
/// producing it (initial assignment + index build), carried into the summary
/// so total-time comparisons include it, as the paper requires.
pub fn fit<M: CentroidModel, P: ShortlistProvider>(
    model: &mut M,
    provider: &mut P,
    assignments: Vec<ClusterId>,
    setup: std::time::Duration,
    config: &StopPolicy,
    closures: bool,
) -> AcceleratedRun {
    let mut cache = ShortlistCache::new(model.n_items());
    drive(
        model,
        assignments,
        setup,
        config,
        |model, assignments, activity| {
            if closures {
                assign_once_closures(model, provider, assignments, activity, &mut cache)
            } else {
                assign_once(model, provider, assignments)
            }
        },
        |model, assignments| model.update_centroids(assignments),
    )
}

/// The **one** iteration driver every fit path shares — serial
/// (Gauss–Seidel, through [`fit`]) and parallel (Jacobi, through
/// [`crate::parallel::parallel_fit`]) differ only in the `pass` and `update`
/// strategies they plug in; iteration accounting and stop logic live here.
///
/// Stop criteria:
/// * `stop_on_no_moves` — a pass moved nothing; the state is a fixpoint.
/// * `stop_on_cost_increase` — the paper's "cost has minimised" criterion.
///   A pass whose cost comes back **strictly worse** than the previous
///   iteration is rolled back (assignments and centroids), so the run always
///   returns the minimising state. The offending pass stays in the
///   instrumentation record (its time was really spent, and the exact
///   baselines record their stopping pass the same way), so after a
///   rollback `RunSummary::final_cost` — the *last recorded pass* — is the
///   undone cost; `RunSummary::best_cost` carries the returned state's.
///
/// Both stops report `converged: true`; only exhausting `max_iterations`
/// reports `false`.
///
/// The driver also owns the **activity dataflow** of the closure engine:
/// each `pass` receives the [`ActivitySet`] for this iteration (all `k`
/// clusters on iteration 1); the next iteration's set is what `update`
/// reports changed, unioned with both endpoints of every move the pass made
/// (diffed here from the pre-pass assignments — O(n) compares, negligible
/// against the pass itself, and always computed so `active_clusters` is
/// recorded identically with closures on or off).
pub(crate) fn drive<M: CentroidModel>(
    model: &mut M,
    mut assignments: Vec<ClusterId>,
    setup: std::time::Duration,
    config: &StopPolicy,
    mut pass: impl FnMut(&M, &mut Vec<ClusterId>, &ActivitySet) -> AssignOutcome,
    mut update: impl FnMut(&mut M, &[ClusterId]) -> ActivitySet,
) -> AcceleratedRun {
    assert_eq!(
        assignments.len(),
        model.n_items(),
        "one starting assignment per item"
    );
    let n = model.n_items();
    let mut iterations = Vec::new();
    let mut converged = false;
    let mut prev_cost = f64::INFINITY;
    // Pre-pass state for cost-increase rollback. The assignment buffer is
    // allocated once and refilled per iteration (`clone_from` reuses its
    // capacity); the centroid snapshot is the only per-iteration clone, and
    // it is O(k·m) against the pass's O(n·m·shortlist).
    let mut prev_assignments: Vec<ClusterId> = Vec::new();
    let mut prev_centroids: Option<M::Snapshot> = None;
    let mut activity = ActivitySet::all(model.k());
    let mut pre_pass: Vec<ClusterId> = Vec::new();
    for iteration in 1..=config.max_iterations {
        let t = Instant::now();
        if config.stop_on_cost_increase {
            prev_assignments.clone_from(&assignments);
            prev_centroids = Some(model.snapshot_centroids());
        }
        pre_pass.clone_from(&assignments);
        let active_clusters = activity.count();
        let outcome = pass(model, &mut assignments, &activity);
        let moves = outcome.moves;
        let mut next_activity = update(model, &assignments);
        for (&old, &new) in pre_pass.iter().zip(&assignments) {
            if old != new {
                next_activity.mark(old);
                next_activity.mark(new);
            }
        }
        activity = next_activity;
        let cost = model.total_cost(&assignments);
        iterations.push(IterationStats {
            iteration,
            duration: t.elapsed(),
            moves,
            avg_candidates: if n == 0 {
                0.0
            } else {
                outcome.shortlist_total as f64 / n as f64
            },
            cost: cost as u64,
            skipped_items: outcome.skipped,
            active_clusters,
        });
        if config.stop_on_no_moves && moves == 0 {
            converged = true;
            break;
        }
        if config.stop_on_cost_increase && cost >= prev_cost {
            if cost > prev_cost {
                // The final pass made things strictly worse: restore the
                // previous pass's assignments and centroids so the returned
                // cost is the minimum over the recorded iterations.
                std::mem::swap(&mut assignments, &mut prev_assignments);
                model.restore_centroids(
                    prev_centroids
                        .take()
                        .expect("rollback state exists when the criterion is armed"),
                );
            }
            converged = true;
            break;
        }
        prev_cost = cost;
    }
    AcceleratedRun {
        assignments,
        summary: RunSummary {
            iterations,
            converged,
            setup,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A 1-D toy model: items and centroids are integers, distance is |a−b|.
    /// Centroid update moves each centroid to the rounded mean of its items.
    struct LineModel {
        items: Vec<i64>,
        centroids: Vec<i64>,
    }

    impl CentroidModel for LineModel {
        type Snapshot = Vec<i64>;
        fn snapshot_centroids(&self) -> Vec<i64> {
            self.centroids.clone()
        }
        fn restore_centroids(&mut self, snapshot: Vec<i64>) {
            self.centroids = snapshot;
        }
        fn k(&self) -> usize {
            self.centroids.len()
        }
        fn n_items(&self) -> usize {
            self.items.len()
        }
        fn best_full(&self, item: u32) -> (ClusterId, f64) {
            let x = self.items[item as usize];
            let (c, d) = self
                .centroids
                .iter()
                .enumerate()
                .map(|(c, &v)| (c, (x - v).abs()))
                .min_by_key(|&(c, d)| (d, c))
                .unwrap();
            (ClusterId(c as u32), d as f64)
        }
        fn best_among(&self, item: u32, candidates: &[ClusterId]) -> Option<(ClusterId, f64)> {
            let x = self.items[item as usize];
            candidates
                .iter()
                .map(|&c| (c, (x - self.centroids[c.idx()]).abs()))
                .min_by_key(|&(c, d)| (d, c))
                .map(|(c, d)| (c, d as f64))
        }
        fn update_centroids(&mut self, assignments: &[ClusterId]) -> ActivitySet {
            let k = self.k();
            let mut sums = vec![0i64; k];
            let mut counts = vec![0i64; k];
            for (i, &c) in assignments.iter().enumerate() {
                sums[c.idx()] += self.items[i];
                counts[c.idx()] += 1;
            }
            let mut activity = ActivitySet::none(k);
            for c in 0..k {
                if counts[c] > 0 {
                    let new = sums[c] / counts[c];
                    if new != self.centroids[c] {
                        activity.mark(ClusterId(c as u32));
                    }
                    self.centroids[c] = new;
                }
            }
            activity
        }
        fn total_cost(&self, assignments: &[ClusterId]) -> f64 {
            assignments
                .iter()
                .enumerate()
                .map(|(i, &c)| (self.items[i] - self.centroids[c.idx()]).abs() as f64)
                .sum()
        }
    }

    /// A provider that always offers every cluster (degenerate but exact).
    struct FullProvider {
        k: usize,
    }

    impl ShortlistProvider for FullProvider {
        fn shortlist(&mut self, _item: u32, out: &mut Vec<ClusterId>) {
            out.clear();
            out.extend((0..self.k as u32).map(ClusterId));
        }
        fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {}
    }

    /// A provider that only ever offers the item's current cluster — the
    /// pathological lower bound (no exploration at all).
    struct FrozenProvider {
        current: Vec<ClusterId>,
    }

    impl ShortlistProvider for FrozenProvider {
        fn shortlist(&mut self, item: u32, out: &mut Vec<ClusterId>) {
            out.clear();
            out.push(self.current[item as usize]);
        }
        fn record_assignment(&mut self, item: u32, cluster: ClusterId) {
            self.current[item as usize] = cluster;
        }
    }

    fn line_model() -> LineModel {
        LineModel {
            items: vec![0, 1, 2, 100, 101, 102],
            centroids: vec![2, 100],
        }
    }

    #[test]
    fn full_provider_reaches_exact_clustering() {
        let mut model = line_model();
        let mut provider = FullProvider { k: 2 };
        let start = vec![ClusterId(0); 6];
        let run = fit(
            &mut model,
            &mut provider,
            start,
            Duration::ZERO,
            &StopPolicy::default(),
            true,
        );
        assert!(run.summary.converged);
        assert_eq!(run.assignments[..3], [ClusterId(0); 3]);
        assert_eq!(run.assignments[3..], [ClusterId(1); 3]);
        assert_eq!(model.centroids, vec![1, 101]);
    }

    #[test]
    fn frozen_provider_never_moves_anything() {
        let mut model = line_model();
        let start = vec![ClusterId(0); 6];
        let mut provider = FrozenProvider {
            current: start.clone(),
        };
        let run = fit(
            &mut model,
            &mut provider,
            start.clone(),
            Duration::ZERO,
            &StopPolicy::default(),
            true,
        );
        assert_eq!(run.assignments, start);
        assert_eq!(run.summary.n_iterations(), 1); // 0 moves → immediate stop
        assert!(run.summary.converged);
    }

    #[test]
    fn avg_candidates_is_recorded() {
        let mut model = line_model();
        let mut provider = FullProvider { k: 2 };
        let run = fit(
            &mut model,
            &mut provider,
            vec![ClusterId(0); 6],
            Duration::ZERO,
            &StopPolicy::default(),
            true,
        );
        for s in &run.summary.iterations {
            assert_eq!(s.avg_candidates, 2.0);
        }
    }

    #[test]
    fn iteration_cap_respected() {
        let mut model = line_model();
        let mut provider = FullProvider { k: 2 };
        let cfg = StopPolicy::max_iterations(1);
        let run = fit(
            &mut model,
            &mut provider,
            vec![ClusterId(0); 6],
            Duration::ZERO,
            &cfg,
            true,
        );
        assert_eq!(run.summary.n_iterations(), 1);
        assert!(!run.summary.converged);
    }

    #[test]
    fn setup_time_propagates_to_summary() {
        let mut model = line_model();
        let mut provider = FullProvider { k: 2 };
        let setup = Duration::from_millis(123);
        let run = fit(
            &mut model,
            &mut provider,
            vec![ClusterId(0); 6],
            setup,
            &StopPolicy::default(),
            true,
        );
        assert!(run.summary.total_time() >= setup);
        assert_eq!(run.summary.setup, setup);
    }

    #[test]
    fn empty_shortlist_keeps_current_assignment() {
        struct EmptyProvider;
        impl ShortlistProvider for EmptyProvider {
            fn shortlist(&mut self, _item: u32, out: &mut Vec<ClusterId>) {
                out.clear();
            }
            fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {}
        }
        let mut model = line_model();
        let start: Vec<ClusterId> = vec![ClusterId(1); 6];
        let run = fit(
            &mut model,
            &mut EmptyProvider,
            start.clone(),
            Duration::ZERO,
            &StopPolicy::default(),
            true,
        );
        assert_eq!(run.assignments, start);
    }

    #[test]
    fn record_assignment_sees_every_move() {
        struct CountingProvider {
            k: usize,
            records: usize,
        }
        impl ShortlistProvider for CountingProvider {
            fn shortlist(&mut self, _item: u32, out: &mut Vec<ClusterId>) {
                out.clear();
                out.extend((0..self.k as u32).map(ClusterId));
            }
            fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {
                self.records += 1;
            }
        }
        let mut model = line_model();
        let mut provider = CountingProvider { k: 2, records: 0 };
        let run = fit(
            &mut model,
            &mut provider,
            vec![ClusterId(0); 6],
            Duration::ZERO,
            &StopPolicy::default(),
            true,
        );
        let total_moves: usize = run.summary.iterations.iter().map(|s| s.moves).sum();
        assert_eq!(provider.records, total_moves);
        assert!(total_moves >= 3); // the three far items had to move
    }

    #[test]
    fn assign_full_finds_per_item_optimum() {
        let model = line_model();
        let mut assignments = vec![ClusterId(0); 6];
        let outcome = assign_full(&model, &mut assignments);
        assert_eq!(outcome.moves, 3); // the three items near centroid 100
        assert_eq!(outcome.shortlist_total, 6 * 2);
        for item in 0..6u32 {
            assert_eq!(assignments[item as usize], model.best_full(item).0);
        }
        // A second pass is a fixpoint.
        assert_eq!(assign_full(&model, &mut assignments).moves, 0);
    }

    #[test]
    fn assign_once_with_saturating_provider_matches_assign_full() {
        let model = line_model();
        let mut provider = FullProvider { k: 2 };
        let mut shortlisted = vec![ClusterId(0); 6];
        let pass = assign_once(&model, &mut provider, &mut shortlisted);
        let mut full = vec![ClusterId(0); 6];
        assign_full(&model, &mut full);
        assert_eq!(shortlisted, full);
        assert_eq!(pass.shortlist_total, 6 * 2);
    }

    #[test]
    fn assign_once_empty_shortlist_keeps_assignment() {
        struct EmptyProvider;
        impl ShortlistProvider for EmptyProvider {
            fn shortlist(&mut self, _item: u32, out: &mut Vec<ClusterId>) {
                out.clear();
            }
            fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {}
        }
        let model = line_model();
        let mut assignments = vec![ClusterId(1); 6];
        let pass = assign_once(&model, &mut EmptyProvider, &mut assignments);
        assert_eq!(pass.moves, 0);
        assert_eq!(assignments, vec![ClusterId(1); 6]);
    }

    /// A scripted model whose cost dips and then rises: pass 1 → cost 10,
    /// pass 2 → cost 5, pass 3 → cost 8. The driver must stop at pass 3 and
    /// hand back pass 2's state (cost 5 = the minimum over iterations).
    struct ScriptedModel {
        /// Scripted (assignment-for-item-0, cost) per pass, consumed in order.
        script: std::cell::RefCell<Vec<(u32, f64)>>,
        /// Cost of the current centroid state.
        current_cost: std::cell::Cell<f64>,
    }

    impl CentroidModel for ScriptedModel {
        type Snapshot = f64;
        fn snapshot_centroids(&self) -> f64 {
            self.current_cost.get()
        }
        fn restore_centroids(&mut self, snapshot: f64) {
            self.current_cost.set(snapshot);
        }
        fn k(&self) -> usize {
            4
        }
        fn n_items(&self) -> usize {
            1
        }
        fn best_full(&self, _item: u32) -> (ClusterId, f64) {
            let (c, d) = self.script.borrow_mut().remove(0);
            (ClusterId(c), d)
        }
        fn best_among(&self, item: u32, _candidates: &[ClusterId]) -> Option<(ClusterId, f64)> {
            Some(self.best_full(item))
        }
        fn update_centroids(&mut self, _assignments: &[ClusterId]) -> ActivitySet {
            ActivitySet::none(self.k())
        }
        fn total_cost(&self, assignments: &[ClusterId]) -> f64 {
            // The scripted cost was stashed by the pass via the assignment.
            let _ = assignments;
            self.current_cost.get()
        }
    }

    #[test]
    fn cost_increase_rolls_back_to_the_minimising_pass() {
        let mut model = ScriptedModel {
            script: std::cell::RefCell::new(vec![(1, 10.0), (2, 5.0), (3, 8.0)]),
            current_cost: std::cell::Cell::new(f64::INFINITY),
        };
        let run = drive(
            &mut model,
            vec![ClusterId(0)],
            Duration::ZERO,
            &StopPolicy::default(),
            |model, assignments, _activity| {
                let (c, d) = model.best_full(0);
                let moved = assignments[0] != c;
                assignments[0] = c;
                model.current_cost.set(d);
                AssignOutcome {
                    moves: usize::from(moved),
                    shortlist_total: 4,
                    skipped: 0,
                }
            },
            |model, _| ActivitySet::none(model.k()),
        );
        assert!(run.summary.converged);
        assert_eq!(run.summary.n_iterations(), 3, "worse pass stays recorded");
        // State rolled back to the pass-2 minimum.
        assert_eq!(run.assignments, vec![ClusterId(2)]);
        assert_eq!(model.current_cost.get(), 5.0);
        let min_cost = run.summary.iterations.iter().map(|s| s.cost).min().unwrap();
        assert_eq!(
            model.total_cost(&run.assignments) as u64,
            min_cost,
            "returned cost must be the minimum over recorded iterations"
        );
    }

    #[test]
    fn equal_cost_stop_keeps_the_latest_state_without_rollback() {
        // cost 10 → cost 10: stop (no strict improvement), but the second
        // state is not worse, so it is kept.
        let mut model = ScriptedModel {
            script: std::cell::RefCell::new(vec![(1, 10.0), (2, 10.0)]),
            current_cost: std::cell::Cell::new(f64::INFINITY),
        };
        let run = drive(
            &mut model,
            vec![ClusterId(0)],
            Duration::ZERO,
            &StopPolicy::default(),
            |model, assignments, _activity| {
                let (c, d) = model.best_full(0);
                let moved = assignments[0] != c;
                assignments[0] = c;
                model.current_cost.set(d);
                AssignOutcome {
                    moves: usize::from(moved),
                    shortlist_total: 4,
                    skipped: 0,
                }
            },
            |model, _| ActivitySet::none(model.k()),
        );
        assert!(run.summary.converged);
        assert_eq!(run.assignments, vec![ClusterId(2)]);
    }

    /// A provider handing each item a fixed scripted shortlist.
    struct ScriptedProvider {
        lists: Vec<Vec<ClusterId>>,
    }

    impl ShortlistProvider for ScriptedProvider {
        fn shortlist(&mut self, item: u32, out: &mut Vec<ClusterId>) {
            out.clear();
            out.extend_from_slice(&self.lists[item as usize]);
        }
        fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {}
    }

    /// Three clusters; the far item's shortlist only references cluster 2,
    /// which never moves after iteration 1 — so the closure pass must skip
    /// it while producing a byte-identical run.
    fn closure_fixture() -> (LineModel, ScriptedProvider, Vec<ClusterId>) {
        let model = LineModel {
            items: vec![0, 1, 2, 100, 101, 102, 1000],
            centroids: vec![2, 100, 1000],
        };
        let near = vec![ClusterId(0)];
        let both = vec![ClusterId(0), ClusterId(1)];
        let far = vec![ClusterId(2)];
        let provider = ScriptedProvider {
            lists: vec![
                near.clone(),
                near.clone(),
                near,
                both.clone(),
                both.clone(),
                both,
                far,
            ],
        };
        let mut start = vec![ClusterId(0); 7];
        start[6] = ClusterId(2);
        (model, provider, start)
    }

    #[test]
    fn closures_fit_is_byte_identical_to_plain_fit() {
        let run_with = |closures: bool| {
            let (mut model, mut provider, start) = closure_fixture();
            let run = fit(
                &mut model,
                &mut provider,
                start,
                Duration::ZERO,
                &StopPolicy::default(),
                closures,
            );
            let trajectory: Vec<_> = run
                .summary
                .iterations
                .iter()
                .map(|s| (s.moves, s.cost, s.avg_candidates, s.active_clusters))
                .collect();
            (run.assignments, model.centroids, trajectory)
        };
        assert_eq!(run_with(true), run_with(false));
    }

    #[test]
    fn closure_pass_skips_items_with_only_inactive_cached_clusters() {
        let (mut model, mut provider, start) = closure_fixture();
        let run = fit(
            &mut model,
            &mut provider,
            start,
            Duration::ZERO,
            &StopPolicy::default(),
            true,
        );
        assert!(run.summary.converged);
        assert_eq!(run.summary.n_iterations(), 2);
        // Iteration 1 evaluates everything (all clusters start active).
        assert_eq!(run.summary.iterations[0].skipped_items, 0);
        assert_eq!(run.summary.iterations[0].active_clusters, 3);
        // By iteration 2 only clusters 0 and 1 moved, so the far item —
        // whose cached shortlist is exactly [2] — is skipped.
        assert_eq!(run.summary.iterations[1].skipped_items, 1);
        assert_eq!(run.summary.iterations[1].active_clusters, 2);
        // And `avg_candidates` still counts its cached shortlist.
        assert_eq!(run.summary.iterations[1].avg_candidates, 10.0 / 7.0);
    }

    #[test]
    fn activity_set_marks_and_reports() {
        let mut set = ActivitySet::none(5);
        assert_eq!(set.count(), 0);
        assert!(!set.any_active_in(&[ClusterId(0), ClusterId(4)]));
        set.mark(ClusterId(3));
        set.mark(ClusterId(3)); // idempotent
        assert_eq!(set.count(), 1);
        assert!(set.is_active(ClusterId(3)));
        assert!(set.any_active_in(&[ClusterId(1), ClusterId(3)]));
        assert!(!set.any_active_in(&[]));
        assert_eq!(set.to_clusters(), vec![3]);
        let back = ActivitySet::from_clusters(5, &set.to_clusters());
        assert_eq!(back, set);
        assert_eq!(ActivitySet::all(4).count(), 4);
        assert_eq!(ActivitySet::all(4).to_clusters(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "one starting assignment per item")]
    fn fit_validates_assignment_length() {
        let mut model = line_model();
        let mut provider = FullProvider { k: 2 };
        let _ = fit(
            &mut model,
            &mut provider,
            vec![],
            Duration::ZERO,
            &StopPolicy::default(),
            true,
        );
    }
}
