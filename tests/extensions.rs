//! Integration tests for the further-work extensions: streaming clustering,
//! mixed-data MH-K-Prototypes, numeric MH-K-Means, canopy shortlists, and
//! mini-batch K-Modes — all exercised across crate boundaries on generated
//! data.

use lshclust_categorical::ClusterId;
use lshclust_core::canopy::{Canopies, CanopyConfig, CanopyProvider};
use lshclust_core::framework::{fit, CentroidModel, StopPolicy};
use lshclust_core::mhkmeans::{mh_kmeans, MhKMeansConfig};
use lshclust_core::mhkmodes::KModesModel;
use lshclust_core::mhkprototypes::{mh_kprototypes, MhKPrototypesConfig};
use lshclust_core::streaming::{StreamingConfig, StreamingMhKModes};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::assign::assign_all_full;
use lshclust_kmodes::init::{initial_modes, InitMethod};
use lshclust_kmodes::kmeans::{kmeans, KMeansConfig, NumericDataset};
use lshclust_kmodes::kprototypes::{suggest_gamma, MixedDataset};
use lshclust_kmodes::minibatch::{minibatch_kmodes, MiniBatchConfig};
use lshclust_metrics::{normalized_mutual_information, purity};
use lshclust_minhash::Banding;

fn predictions(assignments: &[ClusterId]) -> Vec<u32> {
    assignments.iter().map(|c| c.0).collect()
}

/// Numeric columns that agree with the categorical labels.
fn aligned_numeric(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

#[test]
fn streaming_matches_batch_quality_on_rule_data() {
    let dataset = generate(&DatgenConfig::new(800, 80, 40).seed(41));
    let labels = dataset.labels().unwrap().to_vec();
    let mut config = StreamingConfig::new(Banding::new(16, 2), dataset.n_attrs());
    config.distance_threshold = (dataset.n_attrs() as u32) * 7 / 10;
    let mut clusterer = StreamingMhKModes::new(config, dataset.schema().clone());
    for i in 0..dataset.n_items() {
        clusterer.insert(dataset.row(i));
    }
    while clusterer.refine_pass() > 0 {}
    let pred = predictions(clusterer.assignments());
    let nmi = normalized_mutual_information(&pred, &labels);
    assert!(nmi > 0.9, "streaming nmi {nmi}");
    // Cluster count in the right order of magnitude (not n, not 1).
    assert!(clusterer.n_clusters() >= 80);
    assert!(
        clusterer.n_clusters() <= 3 * 80,
        "{} clusters",
        clusterer.n_clusters()
    );
}

#[test]
fn streaming_insert_is_index_consistent() {
    // Every insert's reported cluster must match the stored assignment, and
    // cluster sizes must always sum to the number of inserted items.
    let dataset = generate(&DatgenConfig::new(200, 20, 20).seed(43));
    let mut clusterer = StreamingMhKModes::new(
        StreamingConfig::new(Banding::new(8, 2), dataset.n_attrs()),
        dataset.schema().clone(),
    );
    for i in 0..dataset.n_items() {
        let out = clusterer.insert(dataset.row(i));
        assert_eq!(clusterer.assignments()[out.item as usize], out.cluster);
        let total: u32 = (0..clusterer.n_clusters())
            .map(|c| clusterer.cluster_size(ClusterId(c as u32)))
            .sum();
        assert_eq!(total as usize, i + 1);
    }
}

#[test]
fn mh_kprototypes_uses_both_modalities() {
    let categorical = generate(&DatgenConfig::new(600, 60, 20).seed(47));
    let labels = categorical.labels().unwrap().to_vec();
    let numeric = aligned_numeric(&labels, 8);
    let data = MixedDataset::new(&categorical, &numeric);
    let gamma = suggest_gamma(&numeric);
    let result = mh_kprototypes(&data, &MhKPrototypesConfig::new(60, gamma));
    let p = purity(&predictions(&result.assignments), &labels);
    assert!(p > 0.7, "mixed purity {p}");
    assert!(result.summary.converged);
    // Union shortlist stays below k.
    let last = result.summary.iterations.last().unwrap();
    assert!(last.avg_candidates < 60.0);
}

#[test]
fn mh_kmeans_matches_exact_kmeans_quality() {
    // Numeric-only: compare inertia of accelerated vs exact K-Means on
    // blobs derived from labels.
    let labels: Vec<u32> = (0..600).map(|i| (i % 40) as u32).collect();
    let data = aligned_numeric(&labels, 8);
    let exact = kmeans(&data, &KMeansConfig::new(40));
    let accel = mh_kmeans(&data, &MhKMeansConfig::new(40, 8, 16));
    let accel_pred = predictions(&accel.assignments);
    let exact_nmi = normalized_mutual_information(&exact.assignments, &labels);
    let accel_nmi = normalized_mutual_information(&accel_pred, &labels);
    assert!(
        accel_nmi >= exact_nmi - 0.1,
        "accelerated nmi {accel_nmi} vs exact {exact_nmi}"
    );
}

#[test]
fn canopy_provider_clusters_comparable_to_lsh_provider() {
    let dataset = generate(&DatgenConfig::new(500, 50, 30).seed(53));
    let labels = dataset.labels().unwrap().to_vec();
    let k = 50;

    // Shared setup: same init, same initial assignment.
    let modes = initial_modes(&dataset, k, InitMethod::RandomItems, 53);
    let mut assignments = vec![ClusterId(0); dataset.n_items()];
    let mut model = KModesModel::new(&dataset, modes);
    assign_all_full(&dataset, model.modes(), &mut assignments);
    model.update_centroids(&assignments);

    let canopies = Canopies::build(&dataset, &CanopyConfig::new());
    let mut provider = CanopyProvider::new(canopies, &assignments);
    let run = fit(
        &mut model,
        &mut provider,
        assignments,
        std::time::Duration::ZERO,
        &StopPolicy {
            max_iterations: 30,
            ..StopPolicy::default()
        },
        true,
    );
    let canopy_purity = purity(&predictions(&run.assignments), &labels);

    let (_, mh) = lshclust_core::mhkmodes::paired_run(&dataset, k, Banding::new(20, 5), 53, 30);
    let mh_purity = purity(&predictions(&mh.assignments), &labels);
    assert!(
        (canopy_purity - mh_purity).abs() < 0.15,
        "canopy {canopy_purity} vs MH {mh_purity}"
    );
}

#[test]
fn minibatch_quality_close_to_full_batch() {
    let dataset = generate(&DatgenConfig::new(600, 60, 30).seed(59));
    let labels = dataset.labels().unwrap().to_vec();
    let full = lshclust_kmodes::KModes::new(
        lshclust_kmodes::KModesConfig::new(60)
            .seed(59)
            .max_iterations(30),
    )
    .fit(&dataset);
    let mini = minibatch_kmodes(
        &dataset,
        &MiniBatchConfig::new(60)
            .batch_size(128)
            .n_steps(40)
            .seed(59),
    );
    let fp = purity(&predictions(&full.assignments), &labels);
    let mp = purity(&predictions(&mini.assignments), &labels);
    assert!(mp > fp - 0.15, "mini-batch purity {mp} vs full {fp}");
}

#[test]
fn union_of_providers_never_shrinks_the_shortlist() {
    use lshclust_core::framework::ShortlistProvider;
    use lshclust_core::mhkprototypes::UnionProvider;

    struct Fixed(Vec<ClusterId>);
    impl ShortlistProvider for Fixed {
        fn shortlist(&mut self, _item: u32, out: &mut Vec<ClusterId>) {
            out.clear();
            out.extend_from_slice(&self.0);
        }
        fn record_assignment(&mut self, _item: u32, _cluster: ClusterId) {}
    }

    let a = vec![ClusterId(1), ClusterId(4)];
    let b = vec![ClusterId(4), ClusterId(9), ClusterId(2)];
    let mut union = UnionProvider::new(Fixed(a.clone()), Fixed(b.clone()));
    let mut out = Vec::new();
    union.shortlist(0, &mut out);
    for c in a.iter().chain(&b) {
        assert!(out.contains(c), "union lost {c:?}");
    }
    // Dedup: |union| = 4.
    assert_eq!(out.len(), 4);
}
