//! `bench_serve` — the serving-throughput experiment behind
//! `BENCH_serve.json`: coalesced micro-batch serving vs one-row-per-call,
//! per worker count, for all three modalities.
//!
//! ```text
//! bench_serve [--quick] [--seed N] [--workers A,B] [--callers N] [--requests N] [--out FILE]
//!
//!   --quick       CI-sized workload (seconds instead of minutes)
//!   --seed N      master seed (default 42)
//!   --workers L   comma-separated worker-pool sizes (default 1,2)
//!   --callers N   concurrent caller threads (default 4)
//!   --requests N  requests per caller (default 2000; capped in --quick)
//!   --out FILE    where to write the JSON report (default BENCH_serve.json)
//! ```

use lshclust_bench::serve::{run, ServeSettings};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_serve [--quick] [--seed N] [--workers 1,2] [--callers N] [--requests N] [--out FILE]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut settings = ServeSettings::default();
    let mut out = "BENCH_serve.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => settings.quick = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => settings.seed = s,
                None => return usage(),
            },
            "--workers" => {
                let Some(list) = args.next() else {
                    return usage();
                };
                let parsed: Option<Vec<usize>> =
                    list.split(',').map(|t| t.trim().parse().ok()).collect();
                match parsed {
                    Some(w) if !w.is_empty() => settings.workers = w,
                    _ => return usage(),
                }
            }
            "--callers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(c) if c > 0 => settings.callers = c,
                _ => return usage(),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(r) if r > 0 => settings.requests_per_caller = r,
                _ => return usage(),
            },
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = run(&settings);
    print!("{}", report.render());
    if let Err(e) = report.write_json(&out) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {out}");
    ExitCode::SUCCESS
}
