//! Thread-scaling experiment: how the assignment phase scales with
//! `ClusterSpec::threads`, for every algorithm family.
//!
//! The paper's own implementation "was single threaded and thus only used
//! one of the available twelve cores"; this experiment measures what the
//! Jacobi parallel engine buys on top of the shortlist. One synthetic
//! workload per family (categorical / numeric / mixed / streaming
//! refinement) is fitted at each thread count through the **facade**
//! (`ClusterSpec.threads`), so the experiment exercises exactly the wiring a
//! user gets, and the result is written as `BENCH_threads.json`. The batch
//! families additionally sweep the engine's two chunk-scheduling disciplines
//! (`ClusterSpec::interleaved`: contiguous vs strided worker chunks — same
//! results, different load balance), recorded per series as `scheduling`.
//!
//! Speedups are reported on the mean per-iteration time of the shortlisted
//! phase (the assignment passes dominate it; setup — initial full pass plus
//! index build, both fanned over the same thread count since the
//! parallel-setup change — is reported separately). Wall-clock
//! speedup obviously requires more than one hardware core; `host_cpus` is
//! recorded so single-core runs read as what they are.

use crate::env::BenchEnv;
use lshclust::{ClusterSpec, Clusterer, Lsh, StreamOptions};
use lshclust_categorical::Dataset;
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::kmeans::NumericDataset;
use lshclust_kmodes::kprototypes::MixedDataset;
use std::path::Path;
use std::time::Instant;

/// Settings of a thread-scaling run.
#[derive(Clone, Debug)]
pub struct ThreadsSettings {
    /// Shrinks the workload for CI smoke runs.
    pub quick: bool,
    /// Thread counts to sweep (1 = the serial Gauss–Seidel reference).
    pub threads: Vec<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Default for ThreadsSettings {
    fn default() -> Self {
        Self {
            quick: false,
            threads: vec![1, 2, 4, 8],
            seed: 42,
        }
    }
}

/// One (family × thread count) measurement.
#[derive(Clone, Debug)]
pub struct ThreadRun {
    /// Thread count of this run.
    pub threads: usize,
    /// Shortlisted iterations executed.
    pub iterations: usize,
    /// Setup time (initial full pass + index build), seconds.
    pub setup_s: f64,
    /// Summed time of the shortlisted assignment/update iterations, seconds.
    pub assign_s: f64,
    /// Mean per-iteration time of the shortlisted phase, milliseconds.
    pub assign_iter_ms: f64,
    /// Total wall-clock (setup + iterations), seconds.
    pub total_s: f64,
    /// Cost of the state the run returned (`RunSummary::best_cost`) —
    /// validates that parallel runs land on comparable optima. Streaming
    /// refinement has no objective cost and records 0.
    pub cost: u64,
    /// `assign_iter_ms` of the family's baseline run divided by this run's.
    /// The baseline is the `threads == 1` run whenever one was swept (the
    /// default), making this the assignment-phase speedup over serial; with
    /// a custom `--threads` list that omits 1, the first swept count is the
    /// baseline instead — `FamilyScaling::baseline_threads` records which.
    pub speedup_vs_serial: f64,
}

serde::impl_serde_struct!(ThreadRun {
    threads,
    iterations,
    setup_s,
    assign_s,
    assign_iter_ms,
    total_s,
    cost,
    speedup_vs_serial
});

/// All thread counts for one family under one chunk-scheduling discipline.
#[derive(Clone, Debug)]
pub struct FamilyScaling {
    /// `"categorical"`, `"numeric"`, `"mixed"` or `"streaming-refine"`.
    pub family: String,
    /// The LSH scheme exercised.
    pub lsh: String,
    /// Chunk-scheduling discipline of the Jacobi engine this series ran
    /// under: `"contiguous"` or `"interleaved"` (`ClusterSpec::interleaved`).
    /// The batch families are swept under both; streaming refinement pins
    /// contiguous (the spec knob does not reach the inserter).
    pub scheduling: String,
    /// The thread count every `speedup_vs_serial` is measured against
    /// (1 unless the swept list omitted a serial run).
    pub baseline_threads: usize,
    /// Measurements, one per swept thread count.
    pub runs: Vec<ThreadRun>,
}

serde::impl_serde_struct!(FamilyScaling {
    family,
    lsh,
    scheduling,
    baseline_threads,
    runs
});

/// Workload shape shared by the report.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Items per family workload.
    pub n_items: usize,
    /// Clusters.
    pub n_clusters: usize,
    /// Categorical attributes.
    pub n_attrs: usize,
    /// Numeric dimensions.
    pub dim: usize,
}

serde::impl_serde_struct!(Workload {
    n_items,
    n_clusters,
    n_attrs,
    dim
});

/// The full `BENCH_threads.json` payload.
#[derive(Clone, Debug)]
pub struct ThreadsReport {
    /// Experiment marker.
    pub experiment: String,
    /// Host context and sweep axes (`threads` is the swept axis here).
    pub env: BenchEnv,
    /// Workload shape.
    pub workload: Workload,
    /// Per-family scaling series.
    pub families: Vec<FamilyScaling>,
}

serde::impl_serde_struct!(ThreadsReport {
    experiment,
    env,
    workload,
    families
});

fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

fn run_of(summary: &lshclust::RunSummary, threads: usize) -> ThreadRun {
    let assign_s: f64 = summary
        .iterations
        .iter()
        .map(|s| s.duration.as_secs_f64())
        .sum();
    let iterations = summary.n_iterations();
    let assign_iter_ms = if iterations == 0 {
        0.0
    } else {
        assign_s * 1e3 / iterations as f64
    };
    ThreadRun {
        threads,
        iterations,
        setup_s: summary.setup.as_secs_f64(),
        assign_s,
        assign_iter_ms,
        total_s: summary.total_time().as_secs_f64(),
        // The cost of the state the run returned (min over recorded passes;
        // `final_cost` can be a rolled-back stopping pass).
        cost: summary.best_cost().unwrap_or(0),
        speedup_vs_serial: 1.0, // filled in by `sweep` once the baseline is known
    }
}

/// Runs `fit` at every thread count and derives `speedup_vs_serial` from the
/// `threads == 1` run **wherever it appears in the list** (falling back to
/// the first run when no serial count was requested, so a `--threads 2,4,8`
/// sweep reads as speedup-over-2 rather than silently reporting 1.0×).
/// Returns the runs plus the baseline thread count they are measured
/// against, recorded in the report so the artifact is self-describing.
fn sweep<F: FnMut(usize) -> lshclust::RunSummary>(
    threads: &[usize],
    mut fit: F,
) -> (Vec<ThreadRun>, usize) {
    let mut runs: Vec<ThreadRun> = threads.iter().map(|&t| run_of(&fit(t), t)).collect();
    let baseline = runs.iter().find(|r| r.threads == 1).or(runs.first());
    let baseline_threads = baseline.map_or(1, |r| r.threads);
    if let Some(baseline_ms) = baseline.map(|r| r.assign_iter_ms) {
        for run in &mut runs {
            if run.assign_iter_ms > 0.0 {
                run.speedup_vs_serial = baseline_ms / run.assign_iter_ms;
            }
        }
    }
    (runs, baseline_threads)
}

/// Runs the full experiment and returns the report.
pub fn run(settings: &ThreadsSettings) -> ThreadsReport {
    let (n_items, n_clusters, n_attrs, dim) = if settings.quick {
        (3_000, 50, 20, 8)
    } else {
        (20_000, 200, 40, 16)
    };
    let seed = settings.seed;
    let dataset: Dataset = generate(&DatgenConfig::new(n_items, n_clusters, n_attrs).seed(seed));
    let labels: Vec<u32> = dataset.labels().expect("datgen labels").to_vec();
    let numeric = numeric_blobs(&labels, dim);
    let mixed = MixedDataset::new(&dataset, &numeric);
    let max_iter = 25;

    let mut families = Vec::new();

    // The three batch families sweep threads × scheduling: the interleaved
    // series re-runs the same fits under the strided worker schedule, so the
    // artifact shows what load-balancing buys (results are byte-identical —
    // only the timings differ).
    for interleaved in [false, true] {
        let sched = if interleaved {
            "interleaved"
        } else {
            "contiguous"
        };

        eprintln!("# threads: categorical (MinHash 20b5r, k={n_clusters}, n={n_items}, {sched})");
        let (runs, baseline_threads) = sweep(&settings.threads, |t| {
            let spec = ClusterSpec::new(n_clusters)
                .lsh(Lsh::MinHash { bands: 20, rows: 5 })
                .seed(seed)
                .threads(t)
                .interleaved(interleaved)
                .max_iterations(max_iter);
            Clusterer::new(spec)
                .fit(&dataset)
                .expect("categorical fit")
                .summary
        });
        families.push(FamilyScaling {
            family: "categorical".into(),
            lsh: "MinHash 20b5r".into(),
            scheduling: sched.into(),
            baseline_threads,
            runs,
        });

        eprintln!("# threads: numeric (SimHash 8b16r, {sched})");
        let (runs, baseline_threads) = sweep(&settings.threads, |t| {
            let spec = ClusterSpec::new(n_clusters)
                .lsh(Lsh::SimHash { bands: 8, rows: 16 })
                .seed(seed)
                .threads(t)
                .interleaved(interleaved)
                .max_iterations(max_iter);
            Clusterer::new(spec)
                .fit(&numeric)
                .expect("numeric fit")
                .summary
        });
        families.push(FamilyScaling {
            family: "numeric".into(),
            lsh: "SimHash 8b16r".into(),
            scheduling: sched.into(),
            baseline_threads,
            runs,
        });

        eprintln!("# threads: mixed (MinHash ∪ SimHash, {sched})");
        let (runs, baseline_threads) = sweep(&settings.threads, |t| {
            let spec = ClusterSpec::new(n_clusters)
                .lsh(Lsh::Union {
                    bands: 20,
                    rows: 5,
                    sim_bands: 8,
                    sim_rows: 16,
                })
                .seed(seed)
                .threads(t)
                .interleaved(interleaved)
                .max_iterations(max_iter);
            Clusterer::new(spec).fit(&mixed).expect("mixed fit").summary
        });
        families.push(FamilyScaling {
            family: "mixed".into(),
            lsh: "Union 20b5r + 8b16r".into(),
            scheduling: sched.into(),
            baseline_threads,
            runs,
        });
    }

    eprintln!("# threads: streaming refinement");
    let (runs, baseline_threads) = sweep(&settings.threads, |t| {
        let spec = ClusterSpec::new(1)
            .lsh(Lsh::MinHash { bands: 16, rows: 2 })
            .seed(seed)
            .threads(t)
            .stream(StreamOptions {
                distance_threshold: None,
                max_clusters: Some(n_clusters),
            });
        let mut stream = Clusterer::new(spec)
            .streaming(dataset.schema().clone())
            .expect("streaming");
        for i in 0..dataset.n_items() {
            stream.insert(dataset.row(i));
        }
        // Time each batch refinement pass (the thread-parallel part) and
        // fold the series into the shared summary shape; streaming has
        // no objective cost, so each pass records the moves it made and
        // cost 0.
        let mut iterations = Vec::new();
        for pass in 1..=5usize {
            let t0 = Instant::now();
            let moves = stream.refine_pass();
            iterations.push(lshclust::IterationStats {
                iteration: pass,
                duration: t0.elapsed(),
                moves,
                avg_candidates: 0.0,
                cost: 0,
                skipped_items: 0,
                active_clusters: 0,
            });
            if moves == 0 {
                break;
            }
        }
        lshclust::RunSummary {
            iterations,
            converged: true,
            setup: std::time::Duration::ZERO,
        }
    });
    families.push(FamilyScaling {
        family: "streaming-refine".into(),
        lsh: "MinHash 16b2r (growing)".into(),
        scheduling: "contiguous".into(),
        baseline_threads,
        runs,
    });

    ThreadsReport {
        experiment: "thread-scaling".into(),
        env: BenchEnv::capture(settings.quick, seed)
            .threads(&settings.threads)
            .scheduling(&["contiguous", "interleaved"]),
        workload: Workload {
            n_items,
            n_clusters,
            n_attrs,
            dim,
        },
        families,
    }
}

impl ThreadsReport {
    /// Writes the report as pretty JSON to `path`.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        crate::env::write_report(self, path)
    }

    /// Renders an aligned text summary (one table per family).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "thread scaling  ({}, n={}, k={})",
            self.env.banner(),
            self.workload.n_items,
            self.workload.n_clusters
        );
        for family in &self.families {
            let _ = writeln!(
                out,
                "\n[{}] {}  ({}, speedup baseline: {} thread{})",
                family.family,
                family.lsh,
                family.scheduling,
                family.baseline_threads,
                if family.baseline_threads == 1 {
                    ""
                } else {
                    "s"
                }
            );
            let _ = writeln!(
                out,
                "{:>8}  {:>6}  {:>10}  {:>12}  {:>10}",
                "threads", "iters", "assign (s)", "ms/iter", "speedup"
            );
            for r in &family.runs {
                let _ = writeln!(
                    out,
                    "{:>8}  {:>6}  {:>10.3}  {:>12.3}  {:>9.2}x",
                    r.threads, r.iterations, r.assign_s, r.assign_iter_ms, r.speedup_vs_serial
                );
            }
        }
        out
    }
}
