//! MinHash signatures, LSH banding, the bucket index with cluster references,
//! and the analytic probability model of the paper (§III-A2 – §III-D).
//!
//! The crate provides everything "hashing" in the workspace:
//!
//! * [`hashfn`] — seeded 64-bit hash families (mix-based and tabulation) and a
//!   fast `HashMap` hasher for bucket tables,
//! * [`signature`] — Algorithm 1 (`SIGGEN`) plus Jaccard estimation from
//!   signatures,
//! * [`banding`] — the `b` bands × `r` rows scheme and band-bucket keys,
//! * [`index`] — the LSH index of Algorithm 2: buckets of items per band, a
//!   mutable cluster reference per item, candidate-cluster shortlist queries,
//! * [`probability`] — `1 − (1 − s^r)^b`, the cluster-hit probability of
//!   Tables I–II, the §III-C error bound, and an `(r, b)` parameter advisor,
//! * [`simhash`] / [`pstable`] — random-hyperplane (cosine) and p-stable
//!   (Euclidean) LSH families for the numeric further-work extension.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banding;
pub mod hashfn;
pub mod index;
pub mod probability;
pub mod pstable;
pub mod signature;
pub mod simhash;

pub use banding::Banding;
pub use hashfn::{FastMap, FastSet, HashFamily, MixHashFamily, TabulationHashFamily};
pub use index::{LshIndex, LshIndexBuilder, QueryMode};
pub use probability::LshParams;
pub use signature::{estimate_jaccard, SignatureGenerator};
