//! Serving-daemon walkthrough: a long-lived [`ModelServer`] under concurrent
//! callers, hot-reloaded mid-stream, then drained.
//!
//! ```text
//! cargo run --release -p lshclust --example serving_daemon
//! ```
//!
//! The flow: fit → start a server → three caller threads fire single-row
//! requests through async-style tickets → the main thread refits on fresher
//! data and hot-swaps the model while the callers keep going (no request is
//! dropped; the `generation` on each prediction says which model answered)
//! → graceful shutdown drains the queue.

use lshclust::serve::{ModelServer, Prediction, ServerConfig};
use lshclust::{ClusterSpec, Clusterer, DatasetBuilder, Lsh};
use std::time::Duration;

fn fruit_dataset(extra: &str) -> lshclust::Dataset {
    let mut b = DatasetBuilder::new(vec![
        "color".to_owned(),
        "size".to_owned(),
        "texture".to_owned(),
    ]);
    for (color, size, texture) in [
        ("red", "small", "smooth"),
        ("red", "small", "waxy"),
        ("crimson", "small", "smooth"),
        ("green", "large", "rough"),
        ("green", "huge", "rough"),
        ("olive", "large", "rough"),
    ] {
        b.push_str_row(&[color, size, texture], None).unwrap();
    }
    // The "fresher" training data adds one more observed value so the two
    // models are genuinely different artifacts.
    b.push_str_row(&["red", "small", extra], None).unwrap();
    b.finish()
}

fn main() {
    // 1. Train the first model and stand a server in front of it.
    let spec = ClusterSpec::new(2)
        .lsh(Lsh::MinHash { bands: 8, rows: 2 })
        .seed(7);
    let v1 = Clusterer::new(spec.clone())
        .fit(&fruit_dataset("smooth"))
        .expect("fit v1");
    let server = ModelServer::start(
        v1.model.clone(),
        ServerConfig::default()
            .workers(2)
            .max_batch(16)
            .flush_latency(Duration::from_micros(300)),
    );
    println!(
        "serving a {} model, k={}, generation {}",
        v1.model.modality(),
        v1.model.k(),
        server.generation()
    );

    // 2. Concurrent callers: each fires single-row requests and collects
    //    (generation, cluster) answers. The server coalesces them into
    //    micro-batches behind the scenes.
    let handle = server.handle();
    let rounds = 200;
    let served: Vec<Vec<Prediction>> = std::thread::scope(|scope| {
        let caller_rows: [&[&str]; 3] = [
            &["red", "small", "smooth"],
            &["green", "large", "rough"],
            &["crimson", "small", "waxy"],
        ];
        let workers: Vec<_> = caller_rows
            .into_iter()
            .map(|row| {
                let server = &server;
                scope.spawn(move || {
                    (0..rounds)
                        .map(|_| {
                            server
                                .predict_str_row(row)
                                .expect("serving stays up through the reload")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();

        // 3. Mid-stream hot reload from a fresher fit: one atomic swap, no
        //    draining, no dropped requests. (A daemon would do this on a
        //    control message — see `cluster serve`'s `{"reload": …}` line.)
        std::thread::sleep(Duration::from_millis(2));
        let v2 = Clusterer::new(spec.clone())
            .fit(&fruit_dataset("fuzzy"))
            .expect("fit v2");
        let generation = handle.reload(v2.model.clone());
        println!("hot-reloaded to generation {generation} while callers were in flight");

        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    // 4. Every request resolved; generations never run backwards within a
    //    caller, and each answer matches the library predict of the model
    //    generation that served it.
    let v2_model = handle.model();
    for (caller, predictions) in served.iter().enumerate() {
        assert_eq!(predictions.len(), rounds);
        let mut last_generation = 0;
        for p in predictions {
            assert!(
                p.generation >= last_generation,
                "generation ran backwards for caller {caller}"
            );
            last_generation = p.generation;
        }
        let flipped = predictions
            .windows(2)
            .filter(|w| w[0].generation != w[1].generation)
            .count();
        println!(
            "caller {caller}: {rounds} answers, generations 0->{last_generation} ({flipped} switch)",
        );
    }
    // Spot-check: a post-reload answer equals the v2 model's own predict.
    let check = server.predict_str_row(&["red", "small", "smooth"]).unwrap();
    assert_eq!(check.generation, 1);
    assert_eq!(
        check.cluster,
        v2_model
            .predict_str_row(&["red", "small", "smooth"])
            .unwrap()
    );

    // 5. Graceful shutdown: intake closes, the queue drains, workers join.
    server.shutdown();
    println!("drained and shut down cleanly");
}
