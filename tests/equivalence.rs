//! The paper's correctness notion (§III-C): "the correctness here means that
//! the clustering result is the same as the original algorithm without using
//! the index". These tests verify exact equivalence whenever the shortlist
//! provably contains the true best cluster, and bounded divergence otherwise.

use lshclust::{ClusterSpec, Clusterer, Lsh, MixedDataset, NumericDataset};
use lshclust_categorical::ClusterId;
use lshclust_core::framework::CentroidModel;
use lshclust_core::mhkmodes::{paired_run, KModesModel};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::assign::best_cluster_full;
use lshclust_kmodes::init::{initial_modes, InitMethod};
use lshclust_minhash::index::LshIndexBuilder;
use lshclust_minhash::Banding;

/// With saturating banding (many bands, one row) every pair with any shared
/// value collides, so MH-K-Modes must replay the baseline exactly: same
/// assignments, same iteration count, same costs.
#[test]
fn saturating_banding_replays_baseline_exactly() {
    let dataset = generate(&DatgenConfig::new(300, 30, 30).seed(21));
    let (baseline, mh) = paired_run(&dataset, 30, Banding::new(128, 1), 21, 40);
    assert_eq!(baseline.assignments, mh.assignments);
    let base_costs: Vec<u64> = baseline.summary.iterations.iter().map(|s| s.cost).collect();
    let mh_costs: Vec<u64> = mh.summary.iterations.iter().map(|s| s.cost).collect();
    // MH setup absorbs the baseline's first full pass; iteration i of MH
    // corresponds to iteration i+1 of the baseline.
    assert_eq!(
        &base_costs[1..],
        &mh_costs[..],
        "cost trajectories diverged"
    );
    assert_eq!(
        baseline.summary.n_iterations(),
        mh.summary.n_iterations() + 1
    );
}

/// Restricted search over the exact full cluster set equals full search,
/// item by item (the `best_among`/`best_full` contract the framework needs).
#[test]
fn best_among_full_candidate_set_equals_best_full() {
    let dataset = generate(&DatgenConfig::new(200, 25, 20).seed(8));
    let mut modes = initial_modes(&dataset, 25, InitMethod::RandomItems, 8);
    let assignments: Vec<ClusterId> = dataset
        .labels()
        .unwrap()
        .iter()
        .map(|&l| ClusterId(l % 25))
        .collect();
    modes.recompute(&dataset, &assignments);
    let model = KModesModel::new(&dataset, modes.clone());
    let all: Vec<ClusterId> = (0..25).map(ClusterId).collect();
    for item in 0..dataset.n_items() as u32 {
        let full = model.best_full(item);
        let among = model.best_among(item, &all).unwrap();
        assert_eq!(full.0, among.0, "item {item}");
        assert_eq!(full.1, among.1, "item {item}");
        // And both agree with the raw kernel.
        let kernel = best_cluster_full(dataset.row(item as usize), &modes);
        assert_eq!(kernel.0, full.0);
    }
}

/// When the shortlist contains the true best cluster for every item, one
/// shortlisted pass must produce exactly the assignments a full pass would.
#[test]
fn shortlisted_pass_equals_full_pass_when_no_misses() {
    let dataset = generate(&DatgenConfig::new(250, 25, 30).seed(4));
    let labels = dataset.labels().unwrap();
    let assignments: Vec<ClusterId> = labels.iter().map(|&l| ClusterId(l)).collect();
    let mut modes = initial_modes(&dataset, 25, InitMethod::RandomItems, 4);
    modes.recompute(&dataset, &assignments);
    let index = LshIndexBuilder::new(Banding::new(64, 1))
        .seed(4)
        .build(&dataset, &assignments);
    let model = KModesModel::new(&dataset, modes);
    let mut scratch = index.make_scratch(25);

    for item in 0..dataset.n_items() as u32 {
        let (full_best, full_d) = model.best_full(item);
        index.shortlist(item, &mut scratch, false);
        if scratch.clusters.contains(&full_best) {
            let (short_best, short_d) = model.best_among(item, &scratch.clusters).unwrap();
            assert_eq!(full_best, short_best, "item {item}");
            assert_eq!(full_d, short_d, "item {item}");
        }
    }
}

/// Divergence, where it exists, is bounded: the shortlisted choice can never
/// have *smaller* distance than the full-search optimum, and when it misses,
/// the item keeps a cluster from its shortlist (never an arbitrary one).
#[test]
fn shortlisted_choice_is_never_better_than_full_search() {
    let dataset = generate(&DatgenConfig::new(300, 40, 25).seed(6));
    let good: Vec<ClusterId> = dataset
        .labels()
        .unwrap()
        .iter()
        .map(|&l| ClusterId(l))
        .collect();
    let mut modes = initial_modes(&dataset, 40, InitMethod::RandomItems, 6);
    modes.recompute(&dataset, &good);
    // Scrambled cluster references + strict banding: the true best cluster
    // can only reach the shortlist via a genuine cross-item collision, so
    // misses are guaranteed to occur and the miss path is exercised.
    let scrambled: Vec<ClusterId> = (0..dataset.n_items())
        .map(|i| ClusterId(((i * 7 + 3) % 40) as u32))
        .collect();
    let index = LshIndexBuilder::new(Banding::new(2, 6))
        .seed(6)
        .build(&dataset, &scrambled);
    let model = KModesModel::new(&dataset, modes);
    let mut scratch = index.make_scratch(40);
    let mut misses = 0;
    for item in 0..dataset.n_items() as u32 {
        let (_, full_d) = model.best_full(item);
        index.shortlist(item, &mut scratch, false);
        let (short_c, short_d) = model.best_among(item, &scratch.clusters).unwrap();
        assert!(short_d >= full_d, "shortlist beat exhaustive search");
        assert!(scratch.clusters.contains(&short_c));
        if short_d > full_d {
            misses += 1;
        }
    }
    // Sanity: this banding is strict enough that some misses occurred,
    // i.e. the assertion above was actually exercised on the miss path.
    assert!(misses > 0, "test banding unexpectedly saturated");
}

// ---------------------------------------------------------------------------
// Facade equivalence: the unified `lshclust` front door must be a zero-cost
// veneer — at equal seeds, facade runs are byte-identical to the legacy
// per-algorithm entry points, and `Lsh::None` reproduces the exact baseline
// of every modality.
// ---------------------------------------------------------------------------

/// Numeric columns derived deterministically from labels (blobs per label).
fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

/// Categorical + MinHash: facade run vs `MhKModes::fit`, field for field.
#[test]
fn facade_minhash_is_byte_identical_to_legacy_mh_kmodes() {
    use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
    let dataset = generate(&DatgenConfig::new(300, 30, 25).seed(17));
    let spec = ClusterSpec::new(30)
        .lsh(Lsh::MinHash { bands: 12, rows: 2 })
        .seed(17)
        .max_iterations(25);
    let facade = Clusterer::new(spec)
        .fit(&dataset)
        .expect("categorical + MinHash is supported");

    let legacy = MhKModes::new(
        MhKModesConfig::new(30, Banding::new(12, 2))
            .seed(17)
            .max_iterations(25),
    )
    .fit(&dataset);

    assert_eq!(facade.assignments, legacy.assignments);
    assert_eq!(facade.centroids.modes(), Some(&legacy.modes));
    assert_eq!(facade.summary.n_iterations(), legacy.summary.n_iterations());
    assert_eq!(facade.summary.final_cost(), legacy.summary.final_cost());
    assert_eq!(facade.index_stats, Some(legacy.index_stats));
}

/// Categorical + `Lsh::None`: facade run vs full-search `KModes::fit`.
#[test]
fn facade_none_reproduces_exact_kmodes_baseline() {
    use lshclust_kmodes::{KModes, KModesConfig};
    let dataset = generate(&DatgenConfig::new(250, 25, 20).seed(29));
    let facade = Clusterer::new(ClusterSpec::new(25).seed(29).max_iterations(40))
        .fit(&dataset)
        .expect("categorical baseline is supported");
    let legacy = KModes::new(KModesConfig::new(25).seed(29).max_iterations(40)).fit(&dataset);
    assert_eq!(facade.assignments, legacy.assignments);
    assert_eq!(facade.centroids.modes(), Some(&legacy.modes));
    assert_eq!(facade.summary.final_cost(), legacy.summary.final_cost());
    assert!(
        facade.index_stats.is_none(),
        "no index is built for the exact baseline"
    );
}

/// Numeric + SimHash vs `mh_kmeans`, and numeric + `Lsh::None` vs `kmeans`.
#[test]
fn facade_matches_legacy_numeric_entry_points() {
    use lshclust_core::mhkmeans::{mh_kmeans, MhKMeansConfig};
    use lshclust_kmodes::kmeans::{kmeans, KMeansConfig};
    let labels: Vec<u32> = (0..300).map(|i| (i % 20) as u32).collect();
    let data = numeric_blobs(&labels, 6);

    let facade = Clusterer::new(
        ClusterSpec::new(20)
            .lsh(Lsh::SimHash { bands: 8, rows: 8 })
            .seed(5),
    )
    .fit(&data)
    .expect("numeric + SimHash is supported");
    let legacy = mh_kmeans(&data, &{
        let mut config = MhKMeansConfig::new(20, 8, 8);
        config.seed = 5;
        config
    });
    assert_eq!(facade.assignments, legacy.assignments);
    assert_eq!(
        facade.centroids.means().map(|(_, v)| v.to_vec()),
        Some(legacy.centroids)
    );

    let exact_facade = Clusterer::new(ClusterSpec::new(20).seed(5))
        .fit(&data)
        .expect("numeric baseline is supported");
    let exact_legacy = kmeans(&data, &{
        let mut config = KMeansConfig::new(20);
        config.seed = 5;
        config
    });
    let exact_ids: Vec<ClusterId> = exact_legacy
        .assignments
        .iter()
        .map(|&c| ClusterId(c))
        .collect();
    assert_eq!(exact_facade.assignments, exact_ids);
    assert_eq!(
        exact_facade.centroids.means().map(|(_, v)| v.to_vec()),
        Some(exact_legacy.centroids)
    );
}

/// Mixed + Union vs `mh_kprototypes`, and mixed + `Lsh::None` vs
/// `kprototypes`, at the facade's default γ (the `suggest_gamma` heuristic).
#[test]
fn facade_matches_legacy_mixed_entry_points() {
    use lshclust_core::mhkprototypes::{mh_kprototypes, MhKPrototypesConfig};
    use lshclust_kmodes::kprototypes::{kprototypes, suggest_gamma, KPrototypesConfig};
    let categorical = generate(&DatgenConfig::new(300, 30, 15).seed(31));
    let labels = categorical.labels().unwrap().to_vec();
    let numeric = numeric_blobs(&labels, 6);
    let data = MixedDataset::new(&categorical, &numeric);
    let gamma = suggest_gamma(&numeric);

    let union = Lsh::Union {
        bands: 20,
        rows: 5,
        sim_bands: 8,
        sim_rows: 16,
    };
    let facade = Clusterer::new(ClusterSpec::new(30).lsh(union).seed(31))
        .fit(&data)
        .expect("mixed + Union is supported");
    let legacy = mh_kprototypes(&data, &{
        let mut config = MhKPrototypesConfig::new(30, gamma);
        config.seed = 31;
        config
    });
    assert_eq!(facade.assignments, legacy.assignments);

    let exact_facade = Clusterer::new(ClusterSpec::new(30).seed(31))
        .fit(&data)
        .expect("mixed baseline is supported");
    let exact_legacy = kprototypes(&data, &{
        let mut config = KPrototypesConfig::new(30, gamma);
        config.seed = 31;
        config
    });
    assert_eq!(exact_facade.assignments, exact_legacy.assignments);
}

/// The facade refuses specs that cannot run on the given modality instead
/// of silently substituting something: SimHash on categorical data, MinHash
/// on numeric data, and out-of-range `k` all surface a typed `SpecError`.
#[test]
fn facade_rejects_mismatched_schemes() {
    use lshclust::SpecError;
    let dataset = generate(&DatgenConfig::new(50, 5, 8).seed(1));
    let labels = dataset.labels().unwrap().to_vec();
    let numeric = numeric_blobs(&labels, 4);

    let simhash = ClusterSpec::new(5).lsh(Lsh::SimHash { bands: 4, rows: 4 });
    assert!(matches!(
        Clusterer::new(simhash).fit(&dataset),
        Err(SpecError::UnsupportedLsh {
            modality: "categorical",
            ..
        })
    ));
    let minhash = ClusterSpec::new(5).lsh(Lsh::MinHash { bands: 4, rows: 2 });
    assert!(matches!(
        Clusterer::new(minhash).fit(&numeric),
        Err(SpecError::UnsupportedLsh {
            modality: "numeric",
            ..
        })
    ));
    let oversized = ClusterSpec::new(51);
    assert!(matches!(
        Clusterer::new(oversized).fit(&dataset),
        Err(SpecError::InvalidK { k: 51, n_items: 50 })
    ));
}

/// The acceptance-criteria round trip: a real run's `ClusterSpec` and
/// `RunSummary` survive `serde_json` byte-exactly.
#[test]
fn spec_and_summary_round_trip_as_json() {
    use lshclust::RunSummary;
    let dataset = generate(&DatgenConfig::new(200, 20, 15).seed(3));
    let spec = ClusterSpec::new(20)
        .lsh(Lsh::MinHash { bands: 10, rows: 2 })
        .seed(3)
        .max_iterations(20);

    let spec_json = serde_json::to_string(&spec).unwrap();
    let spec_back: ClusterSpec = serde_json::from_str(&spec_json).unwrap();
    assert_eq!(spec_back, spec);

    let run = Clusterer::new(spec_back).fit(&dataset).unwrap();
    let summary_json = serde_json::to_string(&run.summary).unwrap();
    let summary_back: RunSummary = serde_json::from_str(&summary_json).unwrap();
    assert_eq!(summary_back, run.summary);

    let report_json = serde_json::to_string_pretty(&run.report()).unwrap();
    let report_back: lshclust::RunReport = serde_json::from_str(&report_json).unwrap();
    assert_eq!(report_back, run.report());
}
