//! Mini-batch K-Modes — the categorical adaptation of Sculley's web-scale
//! mini-batch K-Means (reference \[16\] of the paper's related work).
//!
//! Each step samples a batch of `b` items, assigns the whole batch to the
//! nearest modes **as of the start of the step** (a Jacobi-style batch, so
//! the result is independent of the order the batch is processed in), and
//! then nudges only the touched clusters' modes via per-cluster frequency
//! tables ([`FrequencySketch`]). The per-step cost is `O(b·k·m)` instead of
//! `O(n·k·m)`, trading assignment completeness for speed — the *orthogonal*
//! acceleration route to the paper's shortlist idea.
//!
//! This module is the dependency-light **full-search baseline**. The
//! LSH-shortlisted variant — same sampling stream, same sketch, but batch
//! assignment restricted to clusters whose centroids collide with the item
//! in an LSH index that is periodically refreshed as the modes drift — lives
//! in `lshclust_core::minibatch`, wired into the `lshclust` facade as
//! `Fit::MiniBatch`.

use crate::assign::best_cluster_full;
use crate::init::{initial_modes, InitMethod};
use crate::modes::Modes;
use lshclust_categorical::{ClusterId, Dataset, ValueId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// Salt XORed into the seed for batch sampling; shared with the shortlisted
/// engine in `lshclust_core::minibatch` so both draw identical batches at
/// equal seeds (the controlled comparison the bench harness relies on).
pub const BATCH_SAMPLING_SALT: u64 = 0x6d62_6b6d; // "mbkm"

/// Configuration for mini-batch K-Modes.
#[derive(Clone, Debug)]
pub struct MiniBatchConfig {
    /// Number of clusters.
    pub k: usize,
    /// Items sampled per step.
    pub batch_size: usize,
    /// Number of mini-batch steps.
    pub n_steps: usize,
    /// Centroid initialisation.
    pub init: InitMethod,
    /// RNG seed (initialisation and batch sampling).
    pub seed: u64,
    /// Whether `n_steps` was set explicitly (builder bookkeeping: a later
    /// [`Self::batch_size`] call re-derives the heuristic step count unless
    /// the caller pinned one).
    steps_explicit: bool,
}

impl MiniBatchConfig {
    /// The `10·k / batch_size` step heuristic, floored at 50 steps.
    pub fn default_n_steps(k: usize, batch_size: usize) -> usize {
        (10 * k / batch_size.max(1)).max(50)
    }

    /// Defaults: batch of 256 and the [`Self::default_n_steps`] heuristic.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            batch_size: 256,
            n_steps: Self::default_n_steps(k, 256),
            init: InitMethod::RandomItems,
            seed: 0,
            steps_explicit: false,
        }
    }

    /// Sets the batch size. Unless [`Self::n_steps`] was called, the step
    /// count is re-derived from the *new* batch size — previously it stayed
    /// at the heuristic for the default batch of 256, leaving a stale count.
    pub fn batch_size(mut self, b: usize) -> Self {
        assert!(b > 0);
        self.batch_size = b;
        if !self.steps_explicit {
            self.n_steps = Self::default_n_steps(self.k, b);
        }
        self
    }

    /// Sets the number of steps (disables the heuristic).
    pub fn n_steps(mut self, n: usize) -> Self {
        self.n_steps = n;
        self.steps_explicit = true;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a mini-batch K-Modes run.
#[derive(Clone, Debug)]
pub struct MiniBatchResult {
    /// Final cluster per item (from one final full assignment pass).
    pub assignments: Vec<ClusterId>,
    /// Final modes.
    pub modes: Modes,
    /// Steps executed.
    pub n_steps: usize,
    /// Total wall-clock time (steps + final assignment).
    pub elapsed: std::time::Duration,
}

/// One per-(cluster, attribute) count table. Counts only ever increment, so
/// the running argmax (highest count, ties to the smallest value id) can be
/// maintained **incrementally** in O(1) per absorb: after bumping `v`, only
/// `v`'s count changed, so `v` either overtakes the incumbent (strictly
/// higher count, or equal count and smaller id) or nothing moves — exactly
/// the value a full scan would pick.
struct Table {
    counts: Counts,
    best_val: u32,
    best_count: u32,
}

/// Count storage: a flat array indexed by value id when the attribute's
/// training dictionary is small (the mini-batch absorb phase's hot path —
/// no hashing, no entry probing), a hash map otherwise.
enum Counts {
    Dense(Vec<u32>),
    Sparse(HashMap<u32, u32>),
}

impl Table {
    fn sparse() -> Self {
        Self {
            counts: Counts::Sparse(HashMap::new()),
            best_val: 0,
            best_count: 0,
        }
    }

    fn dense(cardinality: usize) -> Self {
        Self {
            counts: Counts::Dense(vec![0; cardinality]),
            best_val: 0,
            best_count: 0,
        }
    }

    /// Increments `v`'s count and returns the new count.
    fn bump(&mut self, v: u32) -> u32 {
        match &mut self.counts {
            Counts::Dense(counts) => match counts.get_mut(v as usize) {
                Some(slot) => {
                    *slot += 1;
                    *slot
                }
                None => {
                    // A value id outside the declared cardinality (e.g.
                    // `NOT_PRESENT` from a foreign row): migrate this table
                    // to sparse instead of indexing out of bounds.
                    let mut map: HashMap<u32, u32> = counts
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(val, &c)| (val as u32, c))
                        .collect();
                    let slot = map.entry(v).or_insert(0);
                    *slot += 1;
                    let count = *slot;
                    self.counts = Counts::Sparse(map);
                    count
                }
            },
            Counts::Sparse(map) => {
                let slot = map.entry(v).or_insert(0);
                *slot += 1;
                *slot
            }
        }
    }

    /// Bumps `v` and returns the refreshed argmax for this cell.
    fn absorb(&mut self, v: u32) -> ValueId {
        let count = self.bump(v);
        if count > self.best_count || (count == self.best_count && v < self.best_val) {
            self.best_count = count;
            self.best_val = v;
        }
        ValueId(self.best_val)
    }
}

/// Per-cluster streaming frequency tables backing the mode updates — the
/// categorical analogue of Sculley's per-centre counts. Public so the
/// LSH-shortlisted mini-batch engine (`lshclust_core::minibatch`) applies
/// byte-identical nudges to this baseline.
///
/// Low-cardinality attributes (dictionary of at most
/// [`Self::DENSE_CARDINALITY_MAX`] values) use flat-array counts instead of
/// hash maps when constructed through [`Self::with_cardinalities`] /
/// [`Self::for_dataset`]; either representation applies **identical**
/// nudges — only the absorb cost differs.
pub struct FrequencySketch {
    /// `k × m` tables, cluster-major.
    tables: Vec<Table>,
    n_attrs: usize,
    /// The refreshed mode of the cluster last absorbed into.
    mode_buf: Vec<ValueId>,
}

impl FrequencySketch {
    /// Largest per-attribute dictionary served by the flat-array fast path
    /// (a `k × m` sketch over dense attributes costs `k·m·cardinality`
    /// 4-byte counters, so the cap keeps worst-case memory in the
    /// low megabytes at bench sizes).
    pub const DENSE_CARDINALITY_MAX: usize = 256;

    /// Empty tables for `k` clusters over `n_attrs` attributes, all sparse
    /// (no dictionary information — every attribute gets a hash map).
    pub fn new(k: usize, n_attrs: usize) -> Self {
        Self {
            tables: (0..k * n_attrs).map(|_| Table::sparse()).collect(),
            n_attrs,
            mode_buf: vec![ValueId(0); n_attrs],
        }
    }

    /// Empty tables for `k` clusters with one declared dictionary size per
    /// attribute: attributes with at most [`Self::DENSE_CARDINALITY_MAX`]
    /// values count into flat arrays, the rest into hash maps.
    pub fn with_cardinalities(k: usize, cardinalities: &[usize]) -> Self {
        let n_attrs = cardinalities.len();
        let tables = (0..k)
            .flat_map(|_| cardinalities.iter())
            .map(|&cardinality| {
                if cardinality > 0 && cardinality <= Self::DENSE_CARDINALITY_MAX {
                    Table::dense(cardinality)
                } else {
                    Table::sparse()
                }
            })
            .collect();
        Self {
            tables,
            n_attrs,
            mode_buf: vec![ValueId(0); n_attrs],
        }
    }

    /// [`Self::with_cardinalities`] with the sizes read off `dataset`'s
    /// training schema.
    pub fn for_dataset(k: usize, dataset: &Dataset) -> Self {
        let schema = dataset.schema();
        let cardinalities: Vec<usize> = (0..schema.n_attrs())
            .map(|a| {
                schema
                    .dictionary(lshclust_categorical::AttrId(a as u32))
                    .len()
            })
            .collect();
        Self::with_cardinalities(k, &cardinalities)
    }

    /// Counts `row` into cluster `c` and returns the cluster's refreshed
    /// mode: for each attribute the current argmax value (highest count,
    /// ties to the smallest value id — deterministic).
    pub fn absorb(&mut self, c: ClusterId, row: &[ValueId]) -> &[ValueId] {
        assert_eq!(row.len(), self.n_attrs);
        for (a, &v) in row.iter().enumerate() {
            let table = &mut self.tables[c.idx() * self.n_attrs + a];
            self.mode_buf[a] = table.absorb(v.0);
        }
        &self.mode_buf
    }
}

/// Runs mini-batch K-Modes (full search within each batch).
pub fn minibatch_kmodes(dataset: &Dataset, config: &MiniBatchConfig) -> MiniBatchResult {
    assert!(config.k > 0 && config.k <= dataset.n_items());
    let start = Instant::now();
    let n = dataset.n_items();
    let b = config.batch_size.min(n);
    let mut rng = StdRng::seed_from_u64(config.seed ^ BATCH_SAMPLING_SALT);
    let mut modes = initial_modes(dataset, config.k, config.init, config.seed);
    let mut sketch = FrequencySketch::for_dataset(config.k, dataset);
    let mut batch: Vec<u32> = Vec::with_capacity(b);
    let mut chosen: Vec<ClusterId> = Vec::with_capacity(b);

    for _ in 0..config.n_steps {
        // Sample, then assign the whole batch against the step's frozen
        // modes (Jacobi-within-batch: no nudge is visible to a later item of
        // the same batch, so the step is order- and thread-independent).
        batch.clear();
        batch.extend((0..b).map(|_| rng.random_range(0..n) as u32));
        chosen.clear();
        chosen.extend(
            batch
                .iter()
                .map(|&item| best_cluster_full(dataset.row(item as usize), &modes).0),
        );
        // Apply the nudges in batch order (centre "nudge" per absorbed item).
        for (&item, &c) in batch.iter().zip(&chosen) {
            let mode = sketch.absorb(c, dataset.row(item as usize));
            modes.set_mode(c, mode);
        }
    }

    // One final full pass so the result is a complete clustering.
    let mut assignments = vec![ClusterId(0); n];
    crate::assign::assign_all_full(dataset, &modes, &mut assignments);
    MiniBatchResult {
        assignments,
        modes,
        n_steps: config.n_steps,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == 0 {
                            format!("g{g}n{i}")
                        } else {
                            format!("g{g}a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn separates_blobs() {
        let ds = blob_dataset(3, 10, 6);
        let result = minibatch_kmodes(
            &ds,
            &MiniBatchConfig::new(3).batch_size(16).n_steps(30).seed(0),
        );
        for g in 0..3 {
            let first = result.assignments[g * 10];
            for i in 0..10 {
                assert_eq!(result.assignments[g * 10 + i], first, "blob {g} split");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = blob_dataset(2, 8, 5);
        let cfg = MiniBatchConfig::new(2).batch_size(8).n_steps(10).seed(7);
        let a = minibatch_kmodes(&ds, &cfg);
        let b = minibatch_kmodes(&ds, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.modes, b.modes);
    }

    #[test]
    fn final_assignment_is_consistent_with_modes() {
        let ds = blob_dataset(2, 6, 4);
        let result = minibatch_kmodes(
            &ds,
            &MiniBatchConfig::new(2).batch_size(4).n_steps(20).seed(3),
        );
        for i in 0..ds.n_items() {
            let (best, _) = best_cluster_full(ds.row(i), &result.modes);
            assert_eq!(result.assignments[i], best);
        }
    }

    #[test]
    fn sketch_tracks_majority() {
        let mut sketch = FrequencySketch::new(1, 2);
        let mode = sketch
            .absorb(ClusterId(0), &[ValueId(5), ValueId(1)])
            .to_vec();
        assert_eq!(mode, vec![ValueId(5), ValueId(1)]);
        sketch.absorb(ClusterId(0), &[ValueId(7), ValueId(1)]);
        let mode = sketch
            .absorb(ClusterId(0), &[ValueId(7), ValueId(2)])
            .to_vec();
        assert_eq!(mode[0], ValueId(7)); // 7 seen twice, 5 once
        assert_eq!(mode[1], ValueId(1)); // 1 twice, 2 once
    }

    #[test]
    fn sketch_tie_breaks_to_smallest_value() {
        let mut sketch = FrequencySketch::new(1, 1);
        sketch.absorb(ClusterId(0), &[ValueId(9)]);
        let mode = sketch.absorb(ClusterId(0), &[ValueId(4)]).to_vec();
        // 1–1 tie: the smaller id must win.
        assert_eq!(mode[0], ValueId(4));
    }

    /// Scan-based reference argmax: the exact rule (highest count, ties to
    /// the smallest value id) the incremental tracker must reproduce.
    struct ScanSketch {
        tables: Vec<HashMap<u32, u32>>,
        n_attrs: usize,
    }

    impl ScanSketch {
        fn new(k: usize, n_attrs: usize) -> Self {
            Self {
                tables: (0..k * n_attrs).map(|_| HashMap::new()).collect(),
                n_attrs,
            }
        }

        fn absorb(&mut self, c: ClusterId, row: &[ValueId]) -> Vec<ValueId> {
            row.iter()
                .enumerate()
                .map(|(a, &v)| {
                    let table = &mut self.tables[c.idx() * self.n_attrs + a];
                    *table.entry(v.0).or_insert(0) += 1;
                    table
                        .iter()
                        .map(|(&val, &count)| (count, std::cmp::Reverse(val)))
                        .max()
                        .map(|(_, std::cmp::Reverse(val))| ValueId(val))
                        .expect("non-empty")
                })
                .collect()
        }
    }

    /// Deterministic pseudo-random absorb stream.
    fn absorb_stream(len: usize, k: usize, domain: u32) -> Vec<(ClusterId, Vec<ValueId>)> {
        let mut state = 0x9e37_79b9_u64;
        (0..len)
            .map(|_| {
                let mut next = || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) as u32
                };
                let c = ClusterId(next() % k as u32);
                let row = vec![ValueId(next() % domain), ValueId(next() % domain)];
                (c, row)
            })
            .collect()
    }

    #[test]
    fn dense_sparse_and_scan_sketches_apply_identical_nudges() {
        // The regression the flat-array fast path must never break: dense
        // tables, sparse tables, and the O(cardinality) reference scan all
        // report the same mode after every single absorb.
        let (k, domain) = (3usize, 7u32);
        let mut dense = FrequencySketch::with_cardinalities(k, &[domain as usize; 2]);
        let mut sparse = FrequencySketch::new(k, 2);
        let mut scan = ScanSketch::new(k, 2);
        for (c, row) in absorb_stream(500, k, domain) {
            let d = dense.absorb(c, &row).to_vec();
            let s = sparse.absorb(c, &row).to_vec();
            let reference = scan.absorb(c, &row);
            assert_eq!(d, reference, "dense diverged on {c:?} {row:?}");
            assert_eq!(s, reference, "sparse diverged on {c:?} {row:?}");
        }
    }

    #[test]
    fn with_cardinalities_mixes_dense_and_sparse_attributes() {
        // Attribute 0 is dense (small dictionary), attribute 1 sparse (over
        // the cap), attribute 2 sparse (unknown cardinality 0); nudges must
        // be identical to the all-sparse sketch either way.
        let cards = [4usize, FrequencySketch::DENSE_CARDINALITY_MAX + 1, 0];
        let mut mixed = FrequencySketch::with_cardinalities(2, &cards);
        let mut reference = FrequencySketch::new(2, 3);
        for (c, row) in absorb_stream(200, 2, 4) {
            let row = vec![row[0], ValueId(row[1].0 + 1000), row[0]];
            assert_eq!(
                mixed.absorb(c, &row).to_vec(),
                reference.absorb(c, &row).to_vec()
            );
        }
    }

    #[test]
    fn dense_table_migrates_to_sparse_on_out_of_dictionary_values() {
        // A value id beyond the declared cardinality (e.g. NOT_PRESENT in a
        // foreign row) must not panic or corrupt the argmax.
        let mut sketch = FrequencySketch::with_cardinalities(1, &[2]);
        sketch.absorb(ClusterId(0), &[ValueId(1)]);
        sketch.absorb(ClusterId(0), &[ValueId(1)]);
        // Out of range: migrates the cell to sparse, counts still correct.
        let mode = sketch.absorb(ClusterId(0), &[ValueId(900)]).to_vec();
        assert_eq!(mode, vec![ValueId(1)], "incumbent survives the migration");
        sketch.absorb(ClusterId(0), &[ValueId(900)]);
        let mode = sketch.absorb(ClusterId(0), &[ValueId(900)]).to_vec();
        assert_eq!(mode, vec![ValueId(900)], "3 > 2: newcomer takes over");
    }

    #[test]
    fn for_dataset_reads_schema_cardinalities() {
        let ds = blob_dataset(2, 5, 3);
        let mut a = FrequencySketch::for_dataset(2, &ds);
        let mut b = FrequencySketch::new(2, 3);
        for i in 0..ds.n_items() {
            let c = ClusterId((i % 2) as u32);
            assert_eq!(
                a.absorb(c, ds.row(i)).to_vec(),
                b.absorb(c, ds.row(i)).to_vec()
            );
        }
    }

    #[test]
    fn handles_batch_larger_than_dataset() {
        let ds = blob_dataset(2, 3, 4);
        let result = minibatch_kmodes(
            &ds,
            &MiniBatchConfig::new(2).batch_size(100).n_steps(5).seed(2),
        );
        assert_eq!(result.assignments.len(), 6);
    }

    #[test]
    fn batch_size_rederives_the_step_heuristic() {
        // The regression this pins: `new` computed the heuristic from the
        // literal default batch of 256, and a later `batch_size(b)` left
        // that stale count in place.
        let small_batch = MiniBatchConfig::new(512).batch_size(8);
        assert_eq!(
            small_batch.n_steps,
            MiniBatchConfig::default_n_steps(512, 8),
            "step heuristic must follow the actual batch size"
        );
        assert_eq!(small_batch.n_steps, 640); // 10·512/8
        let large_batch = MiniBatchConfig::new(512).batch_size(4096);
        assert_eq!(large_batch.n_steps, 50); // floor kicks in
    }

    #[test]
    fn explicit_n_steps_survives_batch_size_changes() {
        let cfg = MiniBatchConfig::new(512).n_steps(7).batch_size(8);
        assert_eq!(cfg.n_steps, 7, "explicit step count must not be clobbered");
        // Order-independence: setting the batch first changes nothing.
        let cfg = MiniBatchConfig::new(512).batch_size(8).n_steps(7);
        assert_eq!(cfg.n_steps, 7);
    }
}
