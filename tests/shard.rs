//! Sharded fitting through the facade: `ClusterSpec::shards(S)` must return
//! **byte-identical** runs to the unsharded fit at equal seeds — assignments,
//! centroids, per-iteration trajectory, and index stats — for every shard
//! count, thread count, and modality; interact correctly with warm starts;
//! reject the spec combinations the coordinator does not cover with typed
//! errors; and speak the exact NDJSON wire protocol the multi-process
//! workers use (looped back in-process here, process-spawning covered by the
//! CLI test in `crates/bench/tests/shard_cli.rs`).
//!
//! The unsharded reference runs at `threads = 2`: the sharded coordinator is
//! always a Jacobi engine, and Jacobi fits are byte-identical at every
//! thread count, so one parallel reference pins them all. (`threads = 1`
//! without shards is the legacy Gauss–Seidel path, which visits items in a
//! different order by design.)

use lshclust::{ClusterRun, ClusterSpec, Clusterer, Fit, Lsh, NumericDataset, SpecError};
use lshclust_categorical::Dataset;
use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
use lshclust_core::shard::{
    shard_mh_kmodes_from, ShardError, ShardReply, ShardRequest, ShardTransport, ShardWorker,
};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::init::{initial_modes, InitMethod};
use lshclust_kmodes::kprototypes::MixedDataset;
use lshclust_minhash::Banding;
use proptest::prelude::*;
use std::time::Instant;

fn categorical_fixture(seed: u64) -> Dataset {
    generate(&DatgenConfig::new(240, 24, 16).seed(seed))
}

fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

const MINHASH: Lsh = Lsh::MinHash { bands: 12, rows: 2 };
const SIMHASH: Lsh = Lsh::SimHash { bands: 8, rows: 12 };
const UNION: Lsh = Lsh::Union {
    bands: 12,
    rows: 2,
    sim_bands: 8,
    sim_rows: 12,
};

fn spec_for(lsh: Lsh, seed: u64, threads: usize, shards: usize) -> ClusterSpec {
    ClusterSpec::new(24)
        .lsh(lsh)
        .seed(seed)
        .threads(threads)
        .shards(shards)
        .max_iterations(30)
}

/// Byte-identity across every observable surface of a run: assignments,
/// centroids, the per-iteration trajectory (moves / cost / candidate
/// volume — everything but wall-clock), convergence, and index stats.
fn assert_runs_identical(reference: &ClusterRun, other: &ClusterRun, label: &str) {
    assert_eq!(
        reference.assignments, other.assignments,
        "{label}: assignments"
    );
    assert_eq!(
        reference.centroids.modes(),
        other.centroids.modes(),
        "{label}: modes"
    );
    assert_eq!(
        reference.centroids.means(),
        other.centroids.means(),
        "{label}: means"
    );
    assert_eq!(
        reference.centroids.prototypes(),
        other.centroids.prototypes(),
        "{label}: prototypes"
    );
    assert_eq!(
        reference.summary.converged, other.summary.converged,
        "{label}: converged"
    );
    assert_eq!(reference.index_stats, other.index_stats, "{label}: stats");
    let trajectory = |run: &ClusterRun| -> Vec<(usize, usize, u64, u64)> {
        run.summary
            .iterations
            .iter()
            .map(|s| (s.iteration, s.moves, s.cost, s.avg_candidates.to_bits()))
            .collect()
    };
    assert_eq!(
        trajectory(reference),
        trajectory(other),
        "{label}: trajectory"
    );
}

// ---------------------------------------------------------------------------
// Byte-identity, shards × threads × modality.
// ---------------------------------------------------------------------------

#[test]
fn categorical_sharded_fits_are_byte_identical() {
    let dataset = categorical_fixture(5);
    let reference = Clusterer::new(spec_for(MINHASH, 5, 2, 1))
        .fit(&dataset)
        .unwrap();
    assert!(
        reference.index_stats.is_some(),
        "categorical runs carry stats"
    );
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 2] {
            let run = Clusterer::new(spec_for(MINHASH, 5, threads, shards))
                .fit(&dataset)
                .unwrap();
            if shards == 1 && threads == 1 {
                continue; // the legacy Gauss–Seidel path, different by design
            }
            let label = format!("categorical s={shards} t={threads}");
            assert_runs_identical(&reference, &run, &label);
        }
    }
}

#[test]
fn numeric_sharded_fits_are_byte_identical() {
    let dataset = categorical_fixture(6);
    let labels = dataset.labels().unwrap().to_vec();
    let numeric = numeric_blobs(&labels, 6);
    let reference = Clusterer::new(spec_for(SIMHASH, 6, 2, 1))
        .fit(&numeric)
        .unwrap();
    for shards in [2usize, 4] {
        for threads in [1usize, 2] {
            let run = Clusterer::new(spec_for(SIMHASH, 6, threads, shards))
                .fit(&numeric)
                .unwrap();
            let label = format!("numeric s={shards} t={threads}");
            assert_runs_identical(&reference, &run, &label);
        }
    }
}

#[test]
fn mixed_sharded_fits_are_byte_identical() {
    let dataset = categorical_fixture(7);
    let labels = dataset.labels().unwrap().to_vec();
    let numeric = numeric_blobs(&labels, 6);
    let mixed = MixedDataset::new(&dataset, &numeric);
    let reference = Clusterer::new(spec_for(UNION, 7, 2, 1))
        .fit(&mixed)
        .unwrap();
    for shards in [2usize, 4] {
        for threads in [1usize, 2] {
            let run = Clusterer::new(spec_for(UNION, 7, threads, shards))
                .fit(&mixed)
                .unwrap();
            let label = format!("mixed s={shards} t={threads}");
            assert_runs_identical(&reference, &run, &label);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Identity is seed- and shard-count-independent, not a fixture
    /// accident: random seeds, shard counts beyond the divisor-friendly
    /// ones (including more shards than some ranges can fill evenly).
    #[test]
    fn sharded_identity_holds_for_arbitrary_seeds_and_counts(
        seed in 0u64..48,
        shards in 2usize..7,
    ) {
        let dataset = categorical_fixture(seed);
        let reference = Clusterer::new(spec_for(MINHASH, seed, 2, 1)).fit(&dataset).unwrap();
        let sharded = Clusterer::new(spec_for(MINHASH, seed, 2, shards)).fit(&dataset).unwrap();
        prop_assert_eq!(&reference.assignments, &sharded.assignments);
        prop_assert_eq!(reference.centroids.modes(), sharded.centroids.modes());
        prop_assert_eq!(reference.index_stats, sharded.index_stats);
        prop_assert_eq!(reference.summary.final_cost(), sharded.summary.final_cost());
    }

    /// Numeric identity includes bit-exact float means (the coordinator
    /// replays member sums in ascending order rather than merging partial
    /// f64 sums, which would drift).
    #[test]
    fn sharded_numeric_means_are_bit_exact(seed in 0u64..48, shards in 2usize..6) {
        let dataset = categorical_fixture(seed);
        let labels = dataset.labels().unwrap().to_vec();
        let numeric = numeric_blobs(&labels, 4);
        let reference = Clusterer::new(spec_for(SIMHASH, seed, 2, 1)).fit(&numeric).unwrap();
        let sharded = Clusterer::new(spec_for(SIMHASH, seed, 2, shards)).fit(&numeric).unwrap();
        prop_assert_eq!(&reference.assignments, &sharded.assignments);
        prop_assert_eq!(reference.centroids.means(), sharded.centroids.means());
    }
}

// ---------------------------------------------------------------------------
// Warm starts.
// ---------------------------------------------------------------------------

#[test]
fn warm_started_sharded_refit_matches_the_unsharded_refit() {
    let dataset = categorical_fixture(9);
    let first = Clusterer::new(spec_for(MINHASH, 9, 2, 1))
        .fit(&dataset)
        .unwrap();
    let warm_unsharded = spec_for(MINHASH, 9, 2, 1)
        .warm_start(&first.model)
        .fit(&dataset)
        .unwrap();
    for shards in [2usize, 4] {
        let warm_sharded = spec_for(MINHASH, 9, 2, shards)
            .warm_start(&first.model)
            .fit(&dataset)
            .unwrap();
        let label = format!("warm s={shards}");
        assert_runs_identical(&warm_unsharded, &warm_sharded, &label);
    }
}

// ---------------------------------------------------------------------------
// Typed rejections: every unsupported combination errors before any work.
// ---------------------------------------------------------------------------

#[test]
fn minibatch_with_shards_is_a_typed_error() {
    let dataset = categorical_fixture(1);
    let spec = spec_for(MINHASH, 1, 2, 2).fit(Fit::MiniBatch {
        batch_size: 32,
        n_steps: 10,
        refresh_every: 5,
    });
    let err = Clusterer::new(spec).fit(&dataset).unwrap_err();
    assert!(
        matches!(err, SpecError::ShardsUnsupported { what } if what.contains("MiniBatch")),
        "{err}"
    );
}

#[test]
fn exact_baseline_with_shards_is_a_typed_error() {
    let dataset = categorical_fixture(1);
    let err = Clusterer::new(ClusterSpec::new(8).seed(1).shards(2))
        .fit(&dataset)
        .unwrap_err();
    assert!(
        matches!(err, SpecError::ShardsUnsupported { what } if what.contains("Lsh::None")),
        "{err}"
    );
}

#[test]
fn include_self_ablation_with_shards_is_a_typed_error() {
    let dataset = categorical_fixture(1);
    let err = Clusterer::new(spec_for(MINHASH, 1, 2, 2).include_self(false))
        .fit(&dataset)
        .unwrap_err();
    assert!(
        matches!(err, SpecError::ShardsUnsupported { what } if what.contains("include_self")),
        "{err}"
    );
}

#[test]
fn streaming_with_shards_is_a_typed_error() {
    let dataset = categorical_fixture(1);
    let spec = ClusterSpec::new(1)
        .lsh(MINHASH)
        .shards(2)
        .stream(lshclust::StreamOptions {
            distance_threshold: None,
            max_clusters: Some(8),
        });
    let err = Clusterer::new(spec)
        .streaming(dataset.schema().clone())
        .unwrap_err();
    assert!(
        matches!(err, SpecError::ShardsUnsupported { what } if what.contains("streaming")),
        "{err}"
    );
}

// ---------------------------------------------------------------------------
// Spec serde: `shards` round-trips, and its absence means 1.
// ---------------------------------------------------------------------------

#[test]
fn spec_shards_round_trip_and_default() {
    let spec = spec_for(MINHASH, 3, 2, 4);
    let json = serde_json::to_string(&spec).unwrap();
    let back: ClusterSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, spec);
    assert_eq!(back.shards, 4);

    // A pre-sharding spec (no "shards" field) still parses, as 1 shard.
    let legacy = json.replace(",\"shards\":4", "");
    assert_ne!(legacy, json, "surgery must remove the field");
    let parsed: ClusterSpec = serde_json::from_str(&legacy).unwrap();
    assert_eq!(parsed.shards, 1);
}

// ---------------------------------------------------------------------------
// NDJSON loopback: the exact serialized wire protocol, without processes.
// ---------------------------------------------------------------------------

/// A transport that round-trips every request and reply through
/// `lshclust::shard::handle_line` — the serialization path the worker
/// processes run — so this test pins the wire protocol itself, not just the
/// in-memory coordinator.
struct LoopbackTransport {
    slots: Vec<Option<ShardWorker>>,
}

impl ShardTransport for LoopbackTransport {
    fn n_shards(&self) -> usize {
        self.slots.len()
    }

    fn roundtrip(&mut self, requests: Vec<ShardRequest>) -> Result<Vec<ShardReply>, ShardError> {
        requests
            .into_iter()
            .zip(&mut self.slots)
            .map(|(request, slot)| {
                let line = serde_json::to_string(&request)
                    .map_err(|e| ShardError(format!("encode: {}", e.0)))?;
                let reply = lshclust::shard::handle_line(slot, &line);
                serde_json::from_str(&reply).map_err(|e| ShardError(format!("decode: {}", e.0)))
            })
            .collect()
    }
}

#[test]
fn ndjson_loopback_fit_is_byte_identical_to_the_direct_fit() {
    let dataset = categorical_fixture(13);
    let cfg = MhKModesConfig::new(12, Banding::new(12, 2))
        .seed(13)
        .threads(2);
    let modes = initial_modes(&dataset, cfg.k, InitMethod::RandomItems, cfg.seed);

    let direct = MhKModes::new(cfg.clone()).fit_from(&dataset, modes.clone(), Instant::now());
    let mut transport = LoopbackTransport {
        slots: vec![None, None, None],
    };
    let looped =
        shard_mh_kmodes_from(&dataset, &cfg, modes, Instant::now(), &mut transport).unwrap();

    assert_eq!(direct.assignments, looped.assignments);
    assert_eq!(direct.modes, looped.modes);
    assert_eq!(direct.index_stats, looped.index_stats);
    assert_eq!(direct.summary.final_cost(), looped.summary.final_cost());
    // Shutdown through the same wire path leaves every slot empty.
    for slot in &mut transport.slots {
        let line = serde_json::to_string(&ShardRequest::Shutdown).unwrap();
        assert_eq!(lshclust::shard::handle_line(slot, &line), "\"Done\"");
        assert!(slot.is_none());
    }
}
