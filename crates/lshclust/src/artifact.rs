//! Content-addressed artifact store: fitted models cached on disk, keyed by
//! **what produced them** instead of where someone saved them.
//!
//! A fit is a pure function of `(spec, dataset)` — every path in this
//! workspace is deterministic down to the byte — so its output can be
//! cached like a build artifact. [`ArtifactStore`] makes that concrete:
//!
//! - **Keys** are [`ArtifactKey`] = `(kind, content_hash, args_hash)`:
//!   `content_hash` digests the dataset (shape, schema, every cell),
//!   `args_hash` digests the spec's canonical JSON. Identical inputs always
//!   map to the same entry; any change to either hash misses.
//! - **Entries** are single files under `root/<kind>/`, framed with a magic,
//!   the payload's FNV-1a hash, and its length. Reads re-hash and verify, so
//!   a corrupted entry is *detected and refit*, never served.
//! - **Writes** go through `root/tmp/` and a final `rename`, so a crash
//!   mid-write can leave stray temp files but never a half-written entry,
//!   and concurrent writers of the same key are safe (last rename wins with
//!   identical bytes).
//! - **[`ArtifactStore::fit_or_get`]** is the front door: a hit decodes the
//!   stored v2 envelope and skips the fit entirely; a miss fits, stores,
//!   and returns the run alongside the model.
//! - **[`ArtifactStore::gc`]** caps the store size, evicting
//!   oldest-modified entries first.
//!
//! ```
//! use lshclust::{ArtifactStore, ClusterSpec, Lsh, NumericDataset};
//!
//! let dir = std::env::temp_dir().join(format!("lshclust-artifact-doc-{}", std::process::id()));
//! let store = ArtifactStore::open(&dir).unwrap();
//! let data = NumericDataset::new(1, vec![0.0, 0.1, 0.2, 9.0, 9.1, 9.2]);
//! let spec = ClusterSpec::new(2).lsh(Lsh::SimHash { bands: 8, rows: 2 });
//!
//! let first = store.fit_or_get(&spec, &data).unwrap();
//! assert!(!first.hit); // cold store: this one fitted
//! let second = store.fit_or_get(&spec, &data).unwrap();
//! assert!(second.hit); // identical (spec, dataset): served from disk
//! assert_eq!(first.model.to_bytes(), second.model.to_bytes());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::model::{FittedModel, ModelError};
use crate::run::ClusterRun;
use crate::spec::{ClusterSpec, SpecError};
use crate::Clusterer;
use crate::Input;
use lshclust_categorical::Dataset;
use lshclust_kmodes::kmeans::NumericDataset;
use lshclust_kmodes::kprototypes::MixedDataset;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Leading bytes of every store entry file.
const ENTRY_MAGIC: [u8; 8] = *b"LSHCART1";
/// Entry frame: magic + payload hash + payload length.
const ENTRY_HEADER: usize = 24;

/// Why a store operation failed.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem access failed (permissions, missing root, full disk, …).
    Io(String),
    /// The cache-miss fit itself was rejected.
    Fit(SpecError),
    /// A freshly fitted model failed to round-trip through its v2 envelope
    /// (a bug, not an environment problem — surfaced rather than cached).
    Model(ModelError),
    /// The artifact kind is not a usable directory name.
    InvalidKind(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact store I/O failed: {e}"),
            ArtifactError::Fit(e) => write!(f, "cache-miss fit failed: {e}"),
            ArtifactError::Model(e) => write!(f, "stored model failed to round-trip: {e}"),
            ArtifactError::InvalidKind(kind) => write!(
                f,
                "artifact kind `{kind}` is not a usable directory name \
                 (lowercase letters, digits, `_`, `-` only)"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// FNV-1a 64-bit over a byte stream — the store's content hash. Stable,
/// dependency-free, and fast enough to verify every read.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

/// Incremental FNV-1a 64-bit hasher (avoids materialising digest buffers
/// for large datasets).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// An input whose content can be digested into the store's `content_hash`.
/// Implemented for every [`crate::Clusterer::fit`] input modality; the
/// digest covers the full cell contents plus shape (and, for categorical
/// data, the interning schema — two datasets with the same ids but
/// different dictionaries digest differently).
pub trait DatasetDigest {
    /// FNV-1a digest of this dataset's complete content.
    fn content_digest(&self) -> u64;
}

impl<T: DatasetDigest + ?Sized> DatasetDigest for &T {
    fn content_digest(&self) -> u64 {
        (**self).content_digest()
    }
}

impl DatasetDigest for Dataset {
    fn content_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.update(b"categorical");
        let schema = serde_json::to_string(self.schema()).expect("schema serializes");
        h.update_u64(schema.len() as u64);
        h.update(schema.as_bytes());
        h.update_u64(self.n_items() as u64);
        h.update_u64(self.n_attrs() as u64);
        for item in 0..self.n_items() {
            for v in self.row(item) {
                h.update(&v.0.to_le_bytes());
            }
        }
        h.finish()
    }
}

impl DatasetDigest for NumericDataset {
    fn content_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.update(b"numeric");
        h.update_u64(self.n_items() as u64);
        h.update_u64(self.dim() as u64);
        for item in 0..self.n_items() {
            for &v in self.row(item) {
                h.update_u64(v.to_bits());
            }
        }
        h.finish()
    }
}

impl DatasetDigest for MixedDataset<'_> {
    fn content_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.update(b"mixed");
        h.update_u64(self.categorical.content_digest());
        h.update_u64(self.numeric.content_digest());
        h.finish()
    }
}

/// The address of one store entry: what kind of artifact, which input
/// content, which arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactKey {
    /// Artifact family — the subdirectory name (`"model"` for fitted
    /// models). Lowercase letters, digits, `_`, `-`.
    pub kind: String,
    /// Digest of the input content (for models: the training dataset).
    pub content_hash: u64,
    /// Digest of the producing arguments (for models: the spec's canonical
    /// compact JSON).
    pub args_hash: u64,
}

impl ArtifactKey {
    /// The key [`ArtifactStore::fit_or_get`] uses: kind `model`, the
    /// dataset digest as content, the spec's canonical JSON digest as args.
    pub fn model<D: DatasetDigest>(spec: &ClusterSpec, input: D) -> Self {
        let spec_json = serde_json::to_string(spec).expect("spec serializes");
        ArtifactKey {
            kind: "model".to_owned(),
            content_hash: input.content_digest(),
            args_hash: content_hash(spec_json.as_bytes()),
        }
    }

    fn file_name(&self) -> String {
        format!("{:016x}-{:016x}.art", self.content_hash, self.args_hash)
    }
}

/// What [`ArtifactStore::get`] found under a key.
#[derive(Debug)]
pub enum Lookup {
    /// Entry present, frame valid, payload hash verified.
    Hit(Vec<u8>),
    /// No entry under that key.
    Miss,
    /// Entry present but truncated or hash-mismatched — callers treat this
    /// as a miss and overwrite it.
    Corrupt,
}

/// One entry as listed by [`ArtifactStore::entries`].
#[derive(Debug)]
pub struct ArtifactEntry {
    /// Absolute path of the entry file.
    pub path: PathBuf,
    /// Artifact family (the subdirectory name).
    pub kind: String,
    /// File size in bytes (frame + payload).
    pub bytes: u64,
    /// Last-modified time, used as the GC eviction order.
    pub modified: std::time::SystemTime,
}

/// Outcome of [`ArtifactStore::verify`].
#[derive(Debug)]
pub struct VerifyReport {
    /// Entries whose frame and payload hash checked out.
    pub ok: usize,
    /// Paths of entries that failed verification.
    pub corrupt: Vec<PathBuf>,
}

/// Outcome of [`ArtifactStore::gc`].
#[derive(Debug)]
pub struct GcReport {
    /// Entries still in the store.
    pub kept: usize,
    /// Entries deleted.
    pub evicted: usize,
    /// Bytes reclaimed by the eviction.
    pub reclaimed_bytes: u64,
}

/// What [`ArtifactStore::fit_or_get`] returns: the served model, whether it
/// came from the store, and — on a miss — the full fresh run.
pub struct CachedFit {
    /// The model, decoded from its stored (hit) or just-written (miss) v2
    /// envelope — byte-identical either way.
    pub model: FittedModel,
    /// `true` when the store served the model without fitting.
    pub hit: bool,
    /// The fresh run on a miss (assignments, summary, stats); `None` on a
    /// hit — the whole point is that nothing was fitted.
    pub run: Option<ClusterRun>,
}

/// Monotonic discriminator for temp-file names (unique within a process;
/// the process id separates concurrent processes).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A content-addressed artifact cache over one root directory. See the
/// [module docs](self) for layout and guarantees.
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open<P: AsRef<Path>>(root: P) -> Result<Self, ArtifactError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join("tmp")).map_err(io_err)?;
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: &ArtifactKey) -> Result<PathBuf, ArtifactError> {
        if key.kind.is_empty()
            || !key
                .kind
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
        {
            return Err(ArtifactError::InvalidKind(key.kind.clone()));
        }
        Ok(self.root.join(&key.kind).join(key.file_name()))
    }

    /// Stores `payload` under `key` (atomic tmp + rename; replaces any
    /// previous entry). Returns the entry path.
    pub fn put(&self, key: &ArtifactKey, payload: &[u8]) -> Result<PathBuf, ArtifactError> {
        let path = self.entry_path(key)?;
        std::fs::create_dir_all(path.parent().expect("entry has a parent")).map_err(io_err)?;
        let mut framed = Vec::with_capacity(ENTRY_HEADER + payload.len());
        framed.extend_from_slice(&ENTRY_MAGIC);
        framed.extend_from_slice(&content_hash(payload).to_le_bytes());
        framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        framed.extend_from_slice(payload);
        let tmp = self.root.join("tmp").join(format!(
            "{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &framed).map_err(io_err)?;
        std::fs::rename(&tmp, &path).map_err(io_err)?;
        Ok(path)
    }

    /// Looks up `key`, verifying the entry frame and payload hash. I/O
    /// errors other than not-found are surfaced; damaged entries come back
    /// as [`Lookup::Corrupt`], never as data.
    pub fn get(&self, key: &ArtifactKey) -> Result<Lookup, ArtifactError> {
        let path = self.entry_path(key)?;
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Lookup::Miss),
            Err(e) => return Err(io_err(e)),
        };
        Ok(match unframe(&bytes) {
            Some(payload) => Lookup::Hit(payload.to_vec()),
            None => Lookup::Corrupt,
        })
    }

    /// Fits `spec` over `input` **unless** the store already holds the
    /// result of that exact `(spec, dataset)` pair, in which case the fit
    /// is skipped entirely and the stored model is decoded and served.
    /// Corrupt or undecodable entries (hash mismatch, version skew) are
    /// treated as misses: the model is refitted and the entry rewritten.
    pub fn fit_or_get<I>(&self, spec: &ClusterSpec, input: I) -> Result<CachedFit, ArtifactError>
    where
        I: Input + DatasetDigest + Copy,
    {
        let key = ArtifactKey::model(spec, input);
        if let Lookup::Hit(payload) = self.get(&key)? {
            // An undecodable payload means the entry was written by an
            // incompatible build (the hash already verified); refit.
            if let Ok(model) = FittedModel::from_bytes(&payload) {
                return Ok(CachedFit {
                    model,
                    hit: true,
                    run: None,
                });
            }
        }
        let run = Clusterer::new(spec.clone())
            .fit(input)
            .map_err(ArtifactError::Fit)?;
        let payload = run.model.to_bytes();
        self.put(&key, &payload)?;
        let model = FittedModel::from_bytes(&payload).map_err(ArtifactError::Model)?;
        Ok(CachedFit {
            model,
            hit: false,
            run: Some(run),
        })
    }

    /// Lists every entry in the store (all kinds), unordered.
    pub fn entries(&self) -> Result<Vec<ArtifactEntry>, ArtifactError> {
        let mut out = Vec::new();
        let root = match std::fs::read_dir(&self.root) {
            Ok(iter) => iter,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(io_err(e)),
        };
        for kind_dir in root {
            let kind_dir = kind_dir.map_err(io_err)?;
            let kind = kind_dir.file_name().to_string_lossy().into_owned();
            if kind == "tmp" || !kind_dir.path().is_dir() {
                continue;
            }
            for file in std::fs::read_dir(kind_dir.path()).map_err(io_err)? {
                let file = file.map_err(io_err)?;
                let path = file.path();
                if path.extension().and_then(|e| e.to_str()) != Some("art") {
                    continue;
                }
                let meta = file.metadata().map_err(io_err)?;
                out.push(ArtifactEntry {
                    path,
                    kind: kind.clone(),
                    bytes: meta.len(),
                    modified: meta.modified().map_err(io_err)?,
                });
            }
        }
        Ok(out)
    }

    /// Re-reads and re-hashes every entry; damaged ones are reported, not
    /// deleted (deleting is [`Self::gc`]'s job, and a caller may want the
    /// evidence).
    pub fn verify(&self) -> Result<VerifyReport, ArtifactError> {
        let mut report = VerifyReport {
            ok: 0,
            corrupt: Vec::new(),
        };
        for entry in self.entries()? {
            let bytes = std::fs::read(&entry.path).map_err(io_err)?;
            if unframe(&bytes).is_some() {
                report.ok += 1;
            } else {
                report.corrupt.push(entry.path);
            }
        }
        Ok(report)
    }

    /// Shrinks the store to at most `max_bytes` of entry files by deleting
    /// oldest-modified entries first (ties broken by path for
    /// determinism). Temp files are always swept.
    pub fn gc(&self, max_bytes: u64) -> Result<GcReport, ArtifactError> {
        if let Ok(tmp) = std::fs::read_dir(self.root.join("tmp")) {
            for stray in tmp.flatten() {
                std::fs::remove_file(stray.path()).ok();
            }
        }
        let mut entries = self.entries()?;
        entries.sort_by(|a, b| {
            b.modified
                .cmp(&a.modified)
                .then_with(|| b.path.cmp(&a.path))
        });
        let mut report = GcReport {
            kept: 0,
            evicted: 0,
            reclaimed_bytes: 0,
        };
        let mut total = 0u64;
        // Newest first: keep while under budget, evict the rest.
        for entry in entries {
            if total + entry.bytes <= max_bytes {
                total += entry.bytes;
                report.kept += 1;
            } else {
                std::fs::remove_file(&entry.path).map_err(io_err)?;
                report.evicted += 1;
                report.reclaimed_bytes += entry.bytes;
            }
        }
        Ok(report)
    }
}

fn io_err(e: std::io::Error) -> ArtifactError {
    ArtifactError::Io(e.to_string())
}

/// Validates an entry file's frame and payload hash; `None` means damaged.
fn unframe(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < ENTRY_HEADER || bytes[..8] != ENTRY_MAGIC {
        return None;
    }
    let stored_hash = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let payload = &bytes[ENTRY_HEADER..];
    if payload.len() as u64 != len || content_hash(payload) != stored_hash {
        return None;
    }
    Some(payload)
}
