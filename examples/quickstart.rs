//! Quickstart: cluster a synthetic categorical dataset with the exact
//! baseline (`Lsh::None` → full-search K-Modes) and with MH-K-Modes
//! (`Lsh::MinHash`), comparing time, iterations and purity — one spec type,
//! one entry point, one result type.
//!
//! ```text
//! cargo run --release -p lshclust --example quickstart
//! ```

use lshclust::{ClusterSpec, Clusterer, Lsh};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_metrics::purity;

fn main() {
    // A miniature of the paper's base dataset, ratios preserved:
    // 4 500 items, 1 000 ground-truth clusters, 100 attributes, 40 000-value
    // domain, conjunctive rules over 40–80 attributes.
    let seed = 42;
    let config = DatgenConfig::new(4_500, 1_000, 100).seed(seed);
    println!(
        "generating {} items x {} attrs, {} rule clusters ...",
        config.n_items, config.n_attrs, config.n_clusters
    );
    let dataset = generate(&config);
    let labels = dataset.labels().unwrap().to_vec();
    let k = config.n_clusters;

    // --- baseline: full-search K-Modes (Lsh::None) ------------------------
    println!("\nrunning K-Modes (full search over k={k}) ...");
    let spec = ClusterSpec::new(k).seed(seed).max_iterations(30);
    let baseline = Clusterer::new(spec).fit(&dataset).unwrap();
    println!(
        "  {} iterations, converged: {}, total {:.2}s, purity {:.3}",
        baseline.summary.n_iterations(),
        baseline.summary.converged,
        baseline.summary.total_time().as_secs_f64(),
        purity(&baseline.labels(), &labels),
    );

    // --- accelerated: MH-K-Modes with the paper's best parameters ---------
    // Same seed ⇒ same initial modes as the baseline (the paper's
    // controlled-comparison requirement).
    let lsh = Lsh::MinHash { bands: 20, rows: 5 };
    println!("\nrunning MH-K-Modes (20b5r) ...");
    let spec = ClusterSpec::new(k).lsh(lsh).seed(seed).max_iterations(30);
    let mh = Clusterer::new(spec).fit(&dataset).unwrap();
    println!(
        "  {} iterations, converged: {}, total {:.2}s, purity {:.3}",
        mh.summary.n_iterations(),
        mh.summary.converged,
        mh.summary.total_time().as_secs_f64(),
        purity(&mh.labels(), &labels),
    );
    for s in &mh.summary.iterations {
        println!(
            "    iter {}: {:.3}s, avg shortlist {:.2} of {k} clusters, {} moves",
            s.iteration,
            s.duration.as_secs_f64(),
            s.avg_candidates,
            s.moves
        );
    }
    if let Some(stats) = mh.index_stats {
        println!(
            "  index: {} buckets over {} bands, largest bucket {}",
            stats.n_buckets, stats.n_bands, stats.largest_bucket
        );
    }

    let speedup =
        baseline.summary.total_time().as_secs_f64() / mh.summary.total_time().as_secs_f64();
    println!("\nspeedup (total time): {speedup:.2}x  (paper reports 2x-6x at full scale)");
}
