//! The unified run result: [`ClusterRun`] and its parts.

use lshclust_categorical::ClusterId;
use lshclust_kmodes::kprototypes::Prototypes;
use lshclust_kmodes::modes::Modes;
use lshclust_kmodes::stats::RunSummary;
use lshclust_minhash::index::IndexStats;

/// Centroid views across the families. Exact/accelerated categorical runs
/// carry [`Centroids::Modes`], numeric runs [`Centroids::Means`], mixed runs
/// [`Centroids::Prototypes`]; the streaming inserter keeps its centroids
/// inside the live clusterer, so a snapshot carries [`Centroids::None`].
#[derive(Clone, Debug)]
pub enum Centroids {
    /// No centroid view available.
    None,
    /// Categorical modes (`k × n_attrs`).
    Modes(Modes),
    /// Numeric means, row-major `k × dim`.
    Means {
        /// Dimensionality of each centroid.
        dim: usize,
        /// The flattened `k × dim` centroid matrix.
        values: Vec<f64>,
    },
    /// Mixed prototypes: modes for the categorical part, means for the
    /// numeric part.
    Prototypes(Prototypes),
}

impl Centroids {
    /// The categorical modes, if this run produced them.
    pub fn modes(&self) -> Option<&Modes> {
        match self {
            Centroids::Modes(m) => Some(m),
            Centroids::Prototypes(p) => Some(&p.modes),
            _ => None,
        }
    }

    /// The numeric means as `(dim, values)`, if this run produced them.
    pub fn means(&self) -> Option<(usize, &[f64])> {
        match self {
            Centroids::Means { dim, values } => Some((*dim, values)),
            _ => None,
        }
    }

    /// The mixed prototypes, if this run produced them.
    pub fn prototypes(&self) -> Option<&Prototypes> {
        match self {
            Centroids::Prototypes(p) => Some(p),
            _ => None,
        }
    }
}

/// The one result type for every [`crate::Clusterer`] run — the union of the
/// information the per-algorithm result structs used to carry, plus the
/// **serving artifact**: a [`crate::FittedModel`] that assigns unseen items,
/// persists as JSON, and seeds warm-started refits.
#[derive(Clone, Debug)]
pub struct ClusterRun {
    /// Final cluster per item.
    pub assignments: Vec<ClusterId>,
    /// Centroid views for the modality that ran.
    pub centroids: Centroids,
    /// Per-iteration instrumentation plus setup time. Exact numeric/mixed
    /// baselines report a single aggregate iteration row (their legacy
    /// results carry totals, not per-iteration series).
    pub summary: RunSummary,
    /// Bucket statistics of the LSH index, when one was built.
    pub index_stats: Option<IndexStats>,
    /// The trained model: frozen centroids + a centroid LSH index, ready
    /// for `predict` / `save` / `ClusterSpec::warm_start`.
    pub model: crate::FittedModel,
}

impl ClusterRun {
    /// Assignments as plain `u32` labels (for the metrics crate).
    pub fn labels(&self) -> Vec<u32> {
        self.assignments.iter().map(|c| c.0).collect()
    }

    /// Iterations actually executed. Unlike `summary.n_iterations()` (which
    /// counts series rows), this is correct for the exact numeric/mixed
    /// baselines too, whose single aggregate row carries the true count in
    /// its `iteration` field.
    pub fn n_iterations(&self) -> usize {
        self.summary.iterations.last().map_or(0, |s| s.iteration)
    }

    /// A flat, serializable report of this run for logs and the bench
    /// harness: `serde_json::to_string(&run.report())`.
    pub fn report(&self) -> RunReport {
        RunReport {
            n_items: self.assignments.len(),
            n_iterations: self.n_iterations(),
            converged: self.summary.converged,
            setup_secs: self.summary.setup.as_secs_f64(),
            total_secs: self.summary.total_time().as_secs_f64(),
            final_cost: self.summary.final_cost(),
            best_cost: self.summary.best_cost(),
            skip_ratios: {
                let n = self.assignments.len().max(1) as f64;
                self.summary
                    .iterations
                    .iter()
                    .map(|s| s.skipped_items as f64 / n)
                    .collect()
            },
            summary: self.summary.clone(),
            index_stats: self.index_stats,
        }
    }
}

/// JSON-ready digest of a [`ClusterRun`].
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Items clustered.
    pub n_items: usize,
    /// Iterations executed.
    pub n_iterations: usize,
    /// Whether the run converged before the cap.
    pub converged: bool,
    /// Setup seconds (initial assignment + index build).
    pub setup_secs: f64,
    /// Total seconds including setup.
    pub total_secs: f64,
    /// Cost of the last recorded pass, if any iteration ran.
    pub final_cost: Option<u64>,
    /// Minimum cost over the recorded passes. With `stop_on_cost_increase`
    /// enabled (the default) this is the cost of the state the run returned
    /// — it differs from `final_cost` exactly when the stopping pass was
    /// rolled back for making the cost worse. With that criterion disabled
    /// the trajectory may oscillate and the returned state is simply the
    /// last pass's (`final_cost`).
    pub best_cost: Option<u64>,
    /// Per-iteration fraction of items the cluster-closure engine kept
    /// without re-evaluation (`skipped_items / n_items`; all zeros when
    /// closures are disabled — the exhaustive engine never skips).
    pub skip_ratios: Vec<f64>,
    /// The full per-iteration series.
    pub summary: RunSummary,
    /// Index bucket statistics, when an index was built.
    pub index_stats: Option<IndexStats>,
}

serde::impl_serde_struct!(RunReport {
    n_items,
    n_iterations,
    converged,
    setup_secs,
    total_secs,
    final_cost,
    best_cost,
    skip_ratios,
    summary,
    index_stats,
});
