//! Choosing `(r, b)` from the paper's probability model (§III-D) before
//! touching any data.
//!
//! Walks through the reasoning of Tables I/II: what is the probability of
//! shortlisting the right *cluster* (not just a pair), how the error bound
//! of §III-C behaves, and what the parameter advisor recommends.
//!
//! ```text
//! cargo run --release -p lshclust --example parameter_tuning
//! ```

use lshclust_minhash::probability::{
    candidate_probability, cluster_hit_probability, error_bound, LshParams,
};
use lshclust_minhash::Banding;

fn main() {
    println!("=== The S-curve: P[candidate pair] = 1 - (1 - s^r)^b ===\n");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "banding", "s=0.05", "s=0.1", "s=0.3", "s=0.5"
    );
    for (b, r) in [(1u32, 1u32), (20, 2), (20, 5), (50, 5)] {
        let banding = Banding::new(b, r);
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.3}   (threshold {:.3})",
            banding.to_string(),
            candidate_probability(0.05, r, b),
            candidate_probability(0.1, r, b),
            candidate_probability(0.3, r, b),
            candidate_probability(0.5, r, b),
            banding.threshold(),
        );
    }

    println!("\n=== Cluster hit probability with c similar items (paper's key relaxation) ===\n");
    println!("With s = 0.1 and 20b5r, a single pair almost never collides:");
    println!(
        "  P[pair]            = {:.5}",
        candidate_probability(0.1, 5, 20)
    );
    println!("but a cluster holding c similar items only needs one collision:");
    for c in [5u32, 10, 20, 50] {
        println!(
            "  P[cluster | c={c:>2}] = {:.5}",
            cluster_hit_probability(0.1, 5, 20, c)
        );
    }

    println!("\n=== The §III-C error bound ===\n");
    println!("For an item with m attributes, some member of its best cluster");
    println!("shares >=1 value, so its similarity is >= 1/(2m-1). The miss");
    println!("probability is bounded by (1 - (1/(2m-1))^r)^(b*|Cn|):\n");
    println!("paper's worked example (m=100, r=1, b=25, |Cn|=20):");
    println!(
        "  bound = {:.3}  (paper: 0.08)",
        error_bound(100, 1, 25, 20)
    );
    println!("\nhow the bound moves:");
    for (m, r, b, c) in [
        (100, 1, 25, 20),
        (100, 1, 50, 20),
        (100, 2, 25, 20),
        (400, 1, 25, 20),
    ] {
        println!(
            "  m={m:<4} r={r} b={b:<3} |Cn|={c:<3} -> bound {:.4}",
            error_bound(m, r, b, c)
        );
    }

    println!("\n=== The parameter advisor ===\n");
    for (s, p) in [(0.3, 0.95), (0.1, 0.9), (0.05, 0.9)] {
        let pair = LshParams::for_threshold(s, p, 8);
        let cluster = LshParams::for_cluster_threshold(s, p, 8, 10);
        println!(
            "catch s={s} with P>={p}:  per-pair -> r={}, b={} ({} hashes);  \
             per-cluster (c=10) -> r={}, b={} ({} hashes)",
            pair.rows,
            pair.bands,
            pair.rows * pair.bands,
            cluster.rows,
            cluster.bands,
            cluster.rows * cluster.bands,
        );
    }
    println!("\nThe cluster-level target is why the paper can use tiny parameter");
    println!("sets like 1b1r and still find the right cluster (Fig. 9).");
}
