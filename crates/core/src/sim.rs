//! Similarity workloads' shared candidate-generation core.
//!
//! The paper builds its LSH index once to shortlist candidate *clusters*
//! during assignment; the same flat band-key buffers answer a different
//! question for free: *which item pairs might be similar at all*. Two items
//! sharing at least one band bucket are a **candidate pair**; every other
//! pair is pruned without a single distance evaluation. [`CandidatePairs`]
//! packages that bucket-collision view behind one seam for both index
//! families — MinHash band keys ([`crate::parallel::hash_band_keys_parallel`])
//! and SimHash band keys ([`crate::mhkmeans::SimHashIndex::hash_band_keys`])
//! are the *same* item-major `n × bands` buffer shape, so one bucket fill
//! serves categorical, numeric and mixed data alike.
//!
//! Candidates are *hints*, never answers: [`verified_pairs`] re-checks every
//! candidate with the modality's exact distance kernel ([`PairData`]) and
//! emits only pairs at or under the caller's threshold. Emitted pairs
//! therefore have **precision 1.0 by construction** — LSH can only lose
//! pairs (recall < 1), never invent them. The verification fans over
//! [`crate::parallel::chunked_map`]; each item's pair list depends only on
//! the frozen buckets, so output is byte-identical at any thread count.

use crate::parallel::chunked_map;
use lshclust_categorical::{dissimilarity, Dataset};
use lshclust_kmodes::kmeans::{sq_euclidean, NumericDataset};
use lshclust_kmodes::kprototypes::MixedDataset;
use lshclust_minhash::hashfn::FastMap;
use lshclust_minhash::index::{ItemScratch, LshIndex};

/// Bucket-collision candidate pairs over a flat item-major band-key buffer —
/// the public seam every similarity workload (dedup, self-join, streaming
/// variants) builds on, independent of which index family hashed the keys.
///
/// The buckets are filled walking items in ascending order, so each bucket's
/// member list is ascending and every derived iteration order is
/// deterministic.
pub struct CandidatePairs {
    n_items: usize,
    bands: usize,
    /// One bucket map per band: band key → colliding item ids (ascending).
    buckets: Vec<FastMap<u64, Vec<u32>>>,
    /// The `n_items × bands` item-major key buffer the buckets were built
    /// from (kept for per-item bucket lookup).
    band_keys: Vec<u64>,
}

impl CandidatePairs {
    /// Builds the bucket view from a flat item-major `n × bands` band-key
    /// buffer — exactly what the parallel hashers emit
    /// ([`crate::parallel::hash_band_keys_parallel`],
    /// [`crate::mhkmeans::SimHashIndex::hash_band_keys`]).
    pub fn from_band_keys(bands: u32, band_keys: Vec<u64>) -> Self {
        let bands = bands as usize;
        assert!(bands > 0, "at least one band required");
        assert!(
            band_keys.len().is_multiple_of(bands),
            "band-key buffer is not item-major n_items × bands"
        );
        let n_items = band_keys.len() / bands;
        let mut buckets: Vec<FastMap<u64, Vec<u32>>> =
            (0..bands).map(|_| FastMap::default()).collect();
        for item in 0..n_items {
            for (band, bucket) in buckets.iter_mut().enumerate() {
                let key = band_keys[item * bands + band];
                bucket.entry(key).or_default().push(item as u32);
            }
        }
        Self {
            n_items,
            bands,
            buckets,
            band_keys,
        }
    }

    /// Borrows the flat key buffer straight out of a fitted item-side
    /// [`LshIndex`] — dedup over the very index a fit already built.
    pub fn from_item_index(index: &LshIndex) -> Self {
        Self::from_band_keys(index.banding().bands(), index.band_keys().to_vec())
    }

    /// Items covered by the bucket view.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Bands per item.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// A per-thread dedup scratch sized for this buffer.
    pub fn make_scratch(&self) -> ItemScratch {
        ItemScratch::new(self.n_items)
    }

    /// Calls `f` exactly once per distinct item `j < item` sharing at least
    /// one band bucket with `item`. Restricting to `j < item` makes every
    /// unordered pair the responsibility of exactly one item, so a parallel
    /// map over items partitions the pair set with no duplicates — the
    /// canonical emission order of the verification pass.
    pub fn for_each_candidate_below<F: FnMut(u32)>(
        &self,
        item: u32,
        scratch: &mut ItemScratch,
        mut f: F,
    ) {
        scratch.begin();
        let keys = &self.band_keys[item as usize * self.bands..(item as usize + 1) * self.bands];
        for (band, key) in keys.iter().enumerate() {
            if let Some(members) = self.buckets[band].get(key) {
                for &other in members {
                    // Members are ascending, so everything at or past `item`
                    // in this bucket is out of range.
                    if other >= item {
                        break;
                    }
                    if scratch.mark(other) {
                        f(other);
                    }
                }
            }
        }
    }

    /// Total distinct unordered candidate pairs, fanned over `threads` — the
    /// work volume LSH leaves after pruning, against `n·(n−1)/2` brute-force
    /// pairs.
    pub fn candidate_pair_count(&self, threads: usize) -> usize {
        let per_item: Vec<u64> = chunked_map(
            self.n_items,
            threads,
            || self.make_scratch(),
            |item, scratch| {
                let mut n = 0u64;
                self.for_each_candidate_below(item, scratch, |_| n += 1);
                n
            },
        );
        per_item.iter().map(|&n| n as usize).sum()
    }
}

/// Concatenates two item-major band-key buffers item by item — the mixed
/// modality's union view (MinHash bands over the categorical part followed
/// by SimHash bands over the numeric part), where a pair is candidate if it
/// collides in *either* family.
pub fn concat_band_keys(
    n_items: usize,
    a_bands: u32,
    a: &[u64],
    b_bands: u32,
    b: &[u64],
) -> Vec<u64> {
    let (wa, wb) = (a_bands as usize, b_bands as usize);
    assert_eq!(a.len(), n_items * wa, "first buffer is not n × a_bands");
    assert_eq!(b.len(), n_items * wb, "second buffer is not n × b_bands");
    let mut out = Vec::with_capacity(n_items * (wa + wb));
    for item in 0..n_items {
        out.extend_from_slice(&a[item * wa..(item + 1) * wa]);
        out.extend_from_slice(&b[item * wb..(item + 1) * wb]);
    }
    out
}

/// The exact distance kernel of one input modality — the verification side
/// of the candidate core. Distances are the same the fit paths minimise:
/// matching dissimilarity (K-Modes), squared Euclidean (K-Means), and their
/// γ-weighted sum (K-Prototypes), so "near-duplicate at threshold t" means
/// the same thing a clusterer's cost function would.
pub enum PairData<'a> {
    /// Encoded categorical rows; distance = differing attribute count.
    Categorical(&'a Dataset),
    /// Numeric rows; distance = squared Euclidean.
    Numeric(&'a NumericDataset),
    /// Mixed rows; distance = matching + γ · squared Euclidean.
    Mixed {
        /// The paired categorical + numeric views.
        data: &'a MixedDataset<'a>,
        /// Huang's mixing weight γ.
        gamma: f64,
    },
}

impl PairData<'_> {
    /// Items in the dataset.
    pub fn n_items(&self) -> usize {
        match self {
            PairData::Categorical(d) => d.n_items(),
            PairData::Numeric(d) => d.n_items(),
            PairData::Mixed { data, .. } => data.n_items(),
        }
    }

    /// Exact distance between items `a` and `b`.
    pub fn distance(&self, a: u32, b: u32) -> f64 {
        let (a, b) = (a as usize, b as usize);
        match self {
            PairData::Categorical(d) => f64::from(dissimilarity::matching(d.row(a), d.row(b))),
            PairData::Numeric(d) => sq_euclidean(d.row(a), d.row(b)),
            PairData::Mixed { data, gamma } => {
                let cat = dissimilarity::matching(data.categorical.row(a), data.categorical.row(b));
                f64::from(cat) + gamma * sq_euclidean(data.numeric.row(a), data.numeric.row(b))
            }
        }
    }
}

/// One exact-verified pair, `a < b`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VerifiedPair {
    /// Lower item id.
    pub a: u32,
    /// Higher item id.
    pub b: u32,
    /// The modality's exact distance between the two items.
    pub distance: f64,
}

/// Result of a verification pass: the emitted pairs plus the candidate
/// volume they were sieved from.
pub struct VerifiedPairs {
    /// Pairs with `distance <= threshold`, sorted by `(a, b)`.
    pub pairs: Vec<VerifiedPair>,
    /// Distinct candidate pairs the buckets produced (verified or not).
    pub candidate_pairs: usize,
}

/// Verifies every candidate pair with the modality's exact kernel and keeps
/// those at or under `threshold`, fanned over `threads` via [`chunked_map`].
///
/// Each item `i`'s pairs `(j, i)` with `j < i` depend only on the frozen
/// buckets and the dataset, so the result is **byte-identical at any thread
/// count**; the flattened list is then sorted by `(a, b)` for a canonical
/// output order. Every emitted pair passed the exact check — precision 1.0
/// by construction.
pub fn verified_pairs(
    candidates: &CandidatePairs,
    data: &PairData<'_>,
    threshold: f64,
    threads: usize,
) -> VerifiedPairs {
    assert_eq!(
        candidates.n_items(),
        data.n_items(),
        "bucket view and dataset disagree on item count"
    );
    let per_item: Vec<(Vec<VerifiedPair>, u64)> = chunked_map(
        candidates.n_items(),
        threads,
        || candidates.make_scratch(),
        |item, scratch| {
            let mut kept = Vec::new();
            let mut seen = 0u64;
            candidates.for_each_candidate_below(item, scratch, |other| {
                seen += 1;
                let d = data.distance(other, item);
                if d <= threshold {
                    kept.push(VerifiedPair {
                        a: other,
                        b: item,
                        distance: d,
                    });
                }
            });
            (kept, seen)
        },
    );
    let candidate_pairs = per_item.iter().map(|(_, n)| *n as usize).sum();
    let mut pairs: Vec<VerifiedPair> = per_item.into_iter().flat_map(|(kept, _)| kept).collect();
    pairs.sort_unstable_by_key(|p| (p.a, p.b));
    VerifiedPairs {
        pairs,
        candidate_pairs,
    }
}

/// The exact all-pairs scan: every pair at or under `threshold`, sorted by
/// `(a, b)` — the ground truth the LSH path's recall is measured against
/// (and the brute-force baseline the benches time).
pub fn brute_force_pairs(data: &PairData<'_>, threshold: f64) -> Vec<VerifiedPair> {
    let n = data.n_items();
    let mut pairs = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            let d = data.distance(a, b);
            if d <= threshold {
                pairs.push(VerifiedPair { a, b, distance: d });
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    fn tiny_categorical() -> Dataset {
        let mut b = DatasetBuilder::anonymous(3);
        for row in [
            ["a", "b", "c"],
            ["a", "b", "c"], // exact duplicate of 0
            ["a", "b", "d"], // near-duplicate of 0/1
            ["x", "y", "z"],
            ["x", "y", "z"], // exact duplicate of 3
        ] {
            b.push_str_row(&row, None).unwrap();
        }
        b.finish()
    }

    fn keys_for(ds: &Dataset, bands: u32, rows: u32) -> Vec<u64> {
        use lshclust_minhash::index::LshIndexBuilder;
        use lshclust_minhash::Banding;
        let builder = LshIndexBuilder::new(Banding::new(bands, rows)).seed(7);
        crate::parallel::hash_band_keys_parallel(&builder, ds, 1)
    }

    #[test]
    fn exact_duplicates_always_collide_and_verify() {
        let ds = tiny_categorical();
        let cp = CandidatePairs::from_band_keys(8, keys_for(&ds, 8, 2));
        let out = verified_pairs(&cp, &PairData::Categorical(&ds), 0.0, 1);
        // Identical rows hash identically in every band, so recall on exact
        // duplicates is 1.0 regardless of banding.
        assert!(out.pairs.iter().any(|p| (p.a, p.b) == (0, 1)));
        assert!(out.pairs.iter().any(|p| (p.a, p.b) == (3, 4)));
        for p in &out.pairs {
            assert_eq!(p.distance, 0.0);
        }
    }

    #[test]
    fn verified_pairs_are_a_subset_of_brute_force() {
        let ds = tiny_categorical();
        let cp = CandidatePairs::from_band_keys(4, keys_for(&ds, 4, 2));
        let data = PairData::Categorical(&ds);
        let exact = brute_force_pairs(&data, 1.0);
        let out = verified_pairs(&cp, &data, 1.0, 1);
        for p in &out.pairs {
            assert!(
                exact.iter().any(|q| (q.a, q.b) == (p.a, p.b)),
                "false positive {p:?}"
            );
        }
    }

    #[test]
    fn output_is_identical_at_any_thread_count() {
        let ds = tiny_categorical();
        let cp = CandidatePairs::from_band_keys(8, keys_for(&ds, 8, 1));
        let data = PairData::Categorical(&ds);
        let one = verified_pairs(&cp, &data, 2.0, 1);
        for threads in [2usize, 3, 8] {
            let other = verified_pairs(&cp, &data, 2.0, threads);
            assert_eq!(other.pairs, one.pairs, "threads={threads}");
            assert_eq!(other.candidate_pairs, one.candidate_pairs);
        }
    }

    #[test]
    fn single_row_banding_reaches_full_recall_on_tiny_data() {
        // rows=1 over few distinct values makes collisions near-certain for
        // close rows; with 16 bands the tiny dataset's near-duplicates are
        // all found, so LSH output equals brute force.
        let ds = tiny_categorical();
        let cp = CandidatePairs::from_band_keys(16, keys_for(&ds, 16, 1));
        let data = PairData::Categorical(&ds);
        let exact = brute_force_pairs(&data, 1.0);
        let out = verified_pairs(&cp, &data, 1.0, 2);
        assert_eq!(out.pairs, exact);
    }

    #[test]
    fn candidate_pair_count_matches_manual_enumeration() {
        let ds = tiny_categorical();
        let cp = CandidatePairs::from_band_keys(8, keys_for(&ds, 8, 2));
        let mut manual = 0usize;
        let mut scratch = cp.make_scratch();
        for item in 0..cp.n_items() as u32 {
            cp.for_each_candidate_below(item, &mut scratch, |_| manual += 1);
        }
        for threads in [1usize, 2, 4] {
            assert_eq!(cp.candidate_pair_count(threads), manual);
        }
    }

    #[test]
    fn numeric_and_mixed_kernels_agree_with_definitions() {
        let num = NumericDataset::new(2, vec![0.0, 0.0, 3.0, 4.0]);
        assert_eq!(PairData::Numeric(&num).distance(0, 1), 25.0);
        let mut b = DatasetBuilder::anonymous(2);
        b.push_str_row(&["a", "b"], None).unwrap();
        b.push_str_row(&["a", "c"], None).unwrap();
        let cat = b.finish();
        let mixed = MixedDataset::new(&cat, &num);
        let d = PairData::Mixed {
            data: &mixed,
            gamma: 0.5,
        }
        .distance(0, 1);
        assert_eq!(d, 1.0 + 0.5 * 25.0);
    }

    #[test]
    fn concat_band_keys_interleaves_item_major() {
        let a = vec![1, 2, 10, 20]; // 2 items × 2 bands
        let b = vec![7, 70]; // 2 items × 1 band
        assert_eq!(concat_band_keys(2, 2, &a, 1, &b), vec![1, 2, 7, 10, 20, 70]);
    }
}
