//! Mixed categorical + numeric clustering — the paper's "combinations of
//! both" further-work item. K-Prototypes (full search) vs MH-K-Prototypes
//! (MinHash index over the categorical part ∪ SimHash index over the numeric
//! part feeding the same framework driver).
//!
//! ```text
//! cargo run --release -p lshclust-core --example mixed_data
//! ```

use lshclust_core::mhkprototypes::{mh_kprototypes, MhKPrototypesConfig};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::kmeans::NumericDataset;
use lshclust_kmodes::kprototypes::{
    kprototypes, suggest_gamma, KPrototypesConfig, MixedDataset,
};
use lshclust_metrics::purity;

fn main() {
    // Categorical part: rule-generated, 2 000 items over 200 clusters.
    let cat_config = DatgenConfig::new(10_000, 1_000, 30).seed(21);
    let categorical = generate(&cat_config);
    let labels = categorical.labels().unwrap().to_vec();

    // Numeric part: each latent cluster sits at its own pseudo-random point
    // in 16-D (angle-based LSH needs dimensionality: random directions in
    // high-D are near-orthogonal, so distinct clusters rarely collide), with deterministic jitter per item.
    const DIM: usize = 16;
    let numeric_data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..DIM).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 32));
                let centre = (h % 1000) as f64 / 50.0; // 0..20 per axis
                let jitter = ((i * 31 + d * 7) as f64 * 0.61).sin() * 0.2;
                centre + jitter
            })
        })
        .collect();
    let numeric = NumericDataset::new(DIM, numeric_data);
    let data = MixedDataset::new(&categorical, &numeric);
    let gamma = suggest_gamma(&numeric);
    println!(
        "{} items: {} categorical attrs + {} numeric dims, k = {}, gamma = {gamma:.4}\n",
        data.n_items(),
        categorical.n_attrs(),
        numeric.dim(),
        cat_config.n_clusters
    );

    println!("K-Prototypes (full search over k=1000)...");
    let full = kprototypes(&data, &KPrototypesConfig::new(1_000, gamma));
    let fp: Vec<u32> = full.assignments.iter().map(|c| c.0).collect();
    println!(
        "  {} iterations, {:.2}s, purity {:.3}",
        full.n_iterations,
        full.elapsed.as_secs_f64(),
        purity(&fp, &labels)
    );

    println!("MH-K-Prototypes (MinHash ∪ SimHash shortlists)...");
    let accel = mh_kprototypes(&data, &MhKPrototypesConfig::new(1_000, gamma));
    let ap: Vec<u32> = accel.assignments.iter().map(|c| c.0).collect();
    println!(
        "  {} iterations, {:.2}s, purity {:.3}, avg shortlist {:.1} of 1000",
        accel.summary.n_iterations(),
        accel.summary.total_time().as_secs_f64(),
        purity(&ap, &labels),
        accel.summary.iterations.last().map_or(0.0, |s| s.avg_candidates)
    );

    let speedup =
        full.elapsed.as_secs_f64() / accel.summary.total_time().as_secs_f64();
    println!("\nspeedup: {speedup:.2}x — the unchanged framework driver, two indexes");
}
