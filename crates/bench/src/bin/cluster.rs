//! `cluster` — command-line clustering over CSV files, through the unified
//! `lshclust` facade.
//!
//! The adoption path for a downstream user: put categorical data in a CSV
//! (header row; optional `__label` column for purity reporting), pick `k`,
//! and go.
//!
//! ```text
//! cluster --input data.csv --k 1000 [options]
//!
//!   --input FILE      input CSV (header; optional trailing __label column)
//!   --output FILE     write per-item cluster ids as CSV (default: stdout summary only)
//!   --k N             number of clusters (required unless --spec sets it)
//!   --bands B         LSH bands (default 20; 0 = run the exact baseline)
//!   --rows R          LSH rows per band (default 5)
//!   --max-iter N      iteration cap (default 100)
//!   --seed N          random seed (default 0)
//!   --threads N       assignment threads (default 1 = paper-faithful)
//!   --spec FILE       read a full ClusterSpec as JSON (overrides the flags above)
//!   --dump-spec       print the effective spec as JSON and exit
//!   --json FILE       write the run report (RunReport) as JSON
//!   --quiet           suppress per-iteration progress
//! ```

use lshclust::{ClusterSpec, Clusterer, Lsh, RunSummary};
use lshclust_categorical::io::read_csv;
use lshclust_metrics::{normalized_mutual_information, purity};
use std::io::Write;
use std::process::ExitCode;

struct Args {
    input: String,
    output: Option<String>,
    k: Option<usize>,
    bands: u32,
    rows: u32,
    max_iter: usize,
    seed: u64,
    threads: usize,
    spec_file: Option<String>,
    dump_spec: bool,
    json: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        output: None,
        k: None,
        bands: 20,
        rows: 5,
        max_iter: 100,
        seed: 0,
        threads: 1,
        spec_file: None,
        dump_spec: false,
        json: None,
        quiet: false,
    };
    let mut input = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--input" => input = Some(value("--input")?),
            "--output" => args.output = Some(value("--output")?),
            "--k" => args.k = Some(value("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--bands" => {
                args.bands = value("--bands")?
                    .parse()
                    .map_err(|e| format!("--bands: {e}"))?
            }
            "--rows" => {
                args.rows = value("--rows")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--max-iter" => {
                args.max_iter = value("--max-iter")?
                    .parse()
                    .map_err(|e| format!("--max-iter: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--spec" => args.spec_file = Some(value("--spec")?),
            "--dump-spec" => args.dump_spec = true,
            "--json" => args.json = Some(value("--json")?),
            "--quiet" => args.quiet = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    // `--dump-spec` never touches the input, so only require it otherwise.
    if let Some(input) = input {
        args.input = input;
    } else if !args.dump_spec {
        return Err("--input is required".to_owned());
    }
    args.threads = args.threads.max(1);
    Ok(args)
}

/// The effective spec: either `--spec FILE` JSON verbatim, or assembled from
/// the individual flags (`--bands 0` selects the exact baseline).
fn build_spec(args: &Args) -> Result<ClusterSpec, String> {
    if let Some(path) = &args.spec_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"));
    }
    let k = args.k.ok_or("--k is required (or provide --spec)")?;
    let lsh = if args.bands == 0 {
        Lsh::None
    } else {
        Lsh::MinHash {
            bands: args.bands,
            rows: args.rows,
        }
    };
    Ok(ClusterSpec::new(k)
        .lsh(lsh)
        .seed(args.seed)
        .threads(args.threads)
        .max_iterations(args.max_iter))
}

fn report(summary: &RunSummary, quiet: bool) {
    if !quiet {
        for s in &summary.iterations {
            eprintln!(
                "iter {:>3}: {:>8.3}s  {:>8} moves  avg shortlist {:>10.2}  cost {}",
                s.iteration,
                s.duration.as_secs_f64(),
                s.moves,
                s.avg_candidates,
                s.cost
            );
        }
    }
    eprintln!(
        "{} iterations, converged: {}, setup {:.3}s, total {:.3}s",
        summary.n_iterations(),
        summary.converged,
        summary.setup.as_secs_f64(),
        summary.total_time().as_secs_f64()
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nrun with: cluster --input data.csv --k N [options]");
            return ExitCode::FAILURE;
        }
    };
    let spec = match build_spec(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.dump_spec {
        println!(
            "{}",
            serde_json::to_string_pretty(&spec).expect("spec serializes")
        );
        return ExitCode::SUCCESS;
    }

    let file = match std::fs::File::open(&args.input) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot open {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let dataset = match read_csv(std::io::BufReader::new(file)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "{}: {} items x {} attrs{}",
        args.input,
        dataset.n_items(),
        dataset.n_attrs(),
        if dataset.labels().is_some() {
            " (labelled)"
        } else {
            ""
        }
    );
    eprintln!(
        "running {} (k={}, seed={}) ...",
        match spec.lsh {
            Lsh::None => "K-Modes (full search)".to_owned(),
            Lsh::MinHash { bands, rows } => format!("MH-K-Modes ({bands}b{rows}r)"),
            other => format!("Lsh::{}", other.name()),
        },
        spec.k,
        spec.seed
    );

    let run = match Clusterer::new(spec).fit(&dataset) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    report(&run.summary, args.quiet);
    let assignments = run.labels();

    if let Some(labels) = dataset.labels() {
        eprintln!(
            "purity {:.4}  nmi {:.4}  (against the __label column)",
            purity(&assignments, labels),
            normalized_mutual_information(&assignments, labels)
        );
    }

    if let Some(path) = &args.json {
        let text = serde_json::to_string_pretty(&run.report()).expect("report serializes");
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote run report to {path}");
    }

    if let Some(path) = &args.output {
        let mut out = match std::fs::File::create(path) {
            Ok(f) => std::io::BufWriter::new(f),
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let _ = writeln!(out, "item,cluster");
        for (i, c) in assignments.iter().enumerate() {
            let _ = writeln!(out, "{i},{c}");
        }
        eprintln!("wrote {} assignments to {path}", assignments.len());
    }
    ExitCode::SUCCESS
}
