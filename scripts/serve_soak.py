#!/usr/bin/env python3
"""Socket-serving soak test against the real `cluster serve --listen` daemon.

Exercises the hardened serving tier end to end, from outside the process:

1. fits a small categorical model with the `cluster` binary;
2. starts `cluster serve --listen 127.0.0.1:0` and parses the bound address;
3. records a serial baseline: one client, every row, one reply per request;
4. runs four concurrent clients — three mixing predicts (two passes, so the
   hot-key cache sees repeats), `stats` probes, and one same-artifact
   `reload`; the fourth fires a burst and is killed mid-stream without
   reading its replies;
5. diffs every answer the surviving clients read against the serial
   baseline, byte for byte on the cluster id;
6. asks the daemon to shut down and checks its drain report resolved every
   ticket it accepted.

Exits non-zero on any mismatch, daemon crash, or leaked ticket. Stdlib only.
"""

import argparse
import json
import re
import socket
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

GROUPS = 3
PER_GROUP = 12
N_ATTRS = 3


def build_rows():
    rows = []
    for g in range(GROUPS):
        for i in range(PER_GROUP):
            rows.append([f"g{g}-a{a}" for a in range(N_ATTRS - 1)] + [f"g{g}-n{i}"])
    return rows


def fit_model(bin_path, workdir, rows):
    csv = workdir / "soak.csv"
    header = ",".join(f"c{a}" for a in range(N_ATTRS))
    csv.write_text(header + "\n" + "\n".join(",".join(r) for r in rows) + "\n")
    model = workdir / "soak_model.json"
    subprocess.run(
        [bin_path, "fit", "--input", str(csv), "--k", str(GROUPS), "--bands", "8",
         "--rows", "2", "--seed", "13", "--model", str(model), "--quiet"],
        check=True,
    )
    return model


class Daemon:
    """The serve process plus a stderr pump that captures its log lines."""

    def __init__(self, bin_path, model):
        self.proc = subprocess.Popen(
            [bin_path, "serve", "--model", str(model), "--listen", "127.0.0.1:0",
             "--hot-keys", "256"],
            stderr=subprocess.PIPE, text=True,
        )
        self.stderr_lines = []
        self.addr_event = threading.Event()
        self.addr = None
        self.pump = threading.Thread(target=self._pump_stderr, daemon=True)
        self.pump.start()

    def _pump_stderr(self):
        for line in self.proc.stderr:
            line = line.rstrip("\n")
            self.stderr_lines.append(line)
            m = re.search(r"serve: listening on (\S+)", line)
            if m:
                host, port = m.group(1).rsplit(":", 1)
                self.addr = (host, int(port))
                self.addr_event.set()
        self.addr_event.set()  # EOF: unblock waiters even on startup failure

    def wait_for_addr(self, timeout=30):
        if not self.addr_event.wait(timeout) or self.addr is None:
            raise RuntimeError(f"daemon never announced an address; stderr: {self.stderr_lines}")
        return self.addr


class Client:
    def __init__(self, addr):
        self.sock = socket.create_connection(addr, timeout=30)
        self.reader = self.sock.makefile("r", encoding="utf-8")

    def send(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def read(self):
        line = self.reader.readline()
        if not line:
            raise RuntimeError("server closed the connection")
        return json.loads(line)

    def predict(self, row, req_id):
        self.send({"id": req_id, "predict": {"row": row}})

    def close(self):
        self.sock.close()


def serial_baseline(addr, rows):
    client = Client(addr)
    baseline = []
    for i, row in enumerate(rows):
        client.predict(row, i)
        reply = client.read()
        assert reply.get("id") == i and "ok" in reply, f"baseline failed: {reply}"
        baseline.append(reply["ok"]["cluster"])
    client.close()
    return baseline


def healthy_client(addr, rows, baseline, model, do_reload, stats_phase, errors):
    try:
        client = Client(addr)
        for rnd in range(2):
            for i, row in enumerate(rows):
                req_id = rnd * 1000 + i
                client.predict(row, req_id)
                reply = client.read()
                if reply.get("id") != req_id or reply.get("ok", {}).get("cluster") != baseline[i]:
                    errors.append(f"row {i} round {rnd}: {reply} != cluster {baseline[i]}")
                if i % 7 == stats_phase:
                    client.send({"stats": True})
                    stats = client.read()
                    if "ok" not in stats:
                        errors.append(f"stats failed: {stats}")
                if do_reload and rnd == 0 and i == 5:
                    client.send({"reload": str(model)})
                    reply = client.read()
                    if not reply.get("ok", {}).get("reloaded"):
                        errors.append(f"reload failed: {reply}")
        client.close()
    except Exception as e:  # noqa: BLE001 - any client failure fails the soak
        errors.append(f"healthy client crashed: {e!r}")


def victim_client(addr, rows, errors):
    """Fires a burst, reads two replies, then dies without draining."""
    try:
        client = Client(addr)
        for i in range(10):
            client.predict(rows[i % len(rows)], i)
        client.read()
        client.read()
        client.sock.close()  # abrupt: eight replies left unread
    except Exception as e:  # noqa: BLE001
        errors.append(f"victim client setup crashed: {e!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin", required=True, help="path to the cluster binary")
    args = parser.parse_args()

    rows = build_rows()
    with tempfile.TemporaryDirectory(prefix="serve-soak-") as tmp:
        workdir = Path(tmp)
        model = fit_model(args.bin, workdir, rows)
        daemon = Daemon(args.bin, model)
        try:
            addr = daemon.wait_for_addr()
            print(f"soak: daemon listening on {addr[0]}:{addr[1]}")
            baseline = serial_baseline(addr, rows)
            print(f"soak: serial baseline over {len(rows)} rows: {sorted(set(baseline))}")

            errors = []
            threads = [
                threading.Thread(target=healthy_client,
                                 args=(addr, rows, baseline, model, c == 0, c, errors))
                for c in range(3)
            ]
            threads.append(threading.Thread(target=victim_client, args=(addr, rows, errors)))
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)

            shutdown = Client(addr)
            shutdown.send({"shutdown": True})
            reply = shutdown.read()
            assert reply.get("ok", {}).get("shutdown"), f"shutdown refused: {reply}"
            shutdown.close()
        finally:
            try:
                code = daemon.proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                daemon.proc.kill()
                raise RuntimeError("daemon did not exit after shutdown")

        if code != 0:
            print(f"soak: FAIL — daemon exited {code}; stderr: {daemon.stderr_lines}")
            return 1
        if errors:
            print(f"soak: FAIL — {len(errors)} divergences:")
            for e in errors[:20]:
                print(f"  {e}")
            return 1
        drain = [l for l in daemon.stderr_lines if "tickets resolved" in l]
        if not drain:
            print(f"soak: FAIL — no drain report; stderr: {daemon.stderr_lines}")
            return 1
        m = re.search(r"(\d+)/(\d+) tickets resolved", drain[-1])
        if not m or m.group(1) != m.group(2):
            print(f"soak: FAIL — leaked tickets: {drain[-1]}")
            return 1
        print(f"soak: PASS — {drain[-1].strip()}")
        return 0


if __name__ == "__main__":
    sys.exit(main())
