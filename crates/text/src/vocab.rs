//! Vocabulary selection by TF-IDF threshold (§IV-B1).
//!
//! "TF-IDF was used to extract the meaningful words from each topic, using
//! up to 10000 words from each topic, and any word with a score over 0.7 was
//! chosen to be included in the vocabulary." Lowering the threshold to 0.3
//! grows the vocabulary (the paper: 382 → 2 881 attributes).

use crate::tfidf::TfIdf;
use std::collections::HashMap;

/// The ordered clustering vocabulary: one attribute per selected word.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    words: Vec<String>,
    index: HashMap<String, u32>,
}

impl Vocabulary {
    /// Selects every word scoring above `threshold` in at least one topic,
    /// considering at most `max_words_per_topic` top words per topic.
    ///
    /// Word order is deterministic: topics in id order, words by descending
    /// score within each topic, duplicates kept on first appearance.
    pub fn select(tfidf: &TfIdf, threshold: f64, max_words_per_topic: usize) -> Self {
        let mut vocab = Self::default();
        for topic in 0..tfidf.n_topics() as u32 {
            let scores = tfidf.topic_scores(topic, max_words_per_topic);
            for (word, score) in scores.scores {
                if score > threshold {
                    vocab.insert(word);
                }
            }
        }
        vocab
    }

    /// Builds a vocabulary from an explicit word list (dedup, order kept).
    pub fn from_words<I: IntoIterator<Item = String>>(words: I) -> Self {
        let mut vocab = Self::default();
        for w in words {
            vocab.insert(w);
        }
        vocab
    }

    fn insert(&mut self, word: String) {
        if !self.index.contains_key(&word) {
            self.index.insert(word.clone(), self.words.len() as u32);
            self.words.push(word);
        }
    }

    /// Number of words (= number of attributes downstream).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no word was selected.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Attribute index of `word`, if selected.
    pub fn position(&self, word: &str) -> Option<u32> {
        self.index.get(word).copied()
    }

    /// Word at attribute index `i`.
    pub fn word(&self, i: u32) -> &str {
        &self.words[i as usize]
    }

    /// Iterates words in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.words.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tfidf_fixture() -> TfIdf {
        let mut t = TfIdf::new(3);
        t.add_document(0, "zoo zoo zoologist the of a");
        t.add_document(1, "stock stock market the of a");
        t.add_document(2, "guitar guitar chord the of a");
        t
    }

    #[test]
    fn selects_topic_words_not_stopwords() {
        let v = Vocabulary::select(&tfidf_fixture(), 0.2, 100);
        assert!(v.position("zoo").is_some());
        assert!(v.position("stock").is_some());
        assert!(v.position("guitar").is_some());
        assert!(v.position("the").is_none());
        assert!(v.position("of").is_none());
    }

    #[test]
    fn higher_threshold_selects_fewer_words() {
        let lo = Vocabulary::select(&tfidf_fixture(), 0.1, 100);
        let hi = Vocabulary::select(&tfidf_fixture(), 0.45, 100);
        assert!(hi.len() < lo.len(), "hi={} lo={}", hi.len(), lo.len());
        assert!(hi.len() >= 3); // the three dominant topic words survive
    }

    #[test]
    fn max_words_per_topic_caps_selection() {
        let v = Vocabulary::select(&tfidf_fixture(), 0.0, 1);
        // One word per topic at most (scores > 0 only for topic words).
        assert!(v.len() <= 3);
    }

    #[test]
    fn positions_are_dense_and_stable() {
        let v = Vocabulary::select(&tfidf_fixture(), 0.2, 100);
        for i in 0..v.len() as u32 {
            assert_eq!(v.position(v.word(i)), Some(i));
        }
    }

    #[test]
    fn from_words_dedups() {
        let v = Vocabulary::from_words(["a", "b", "a", "c"].into_iter().map(String::from));
        assert_eq!(v.len(), 3);
        assert_eq!(v.position("a"), Some(0));
        assert_eq!(v.position("c"), Some(2));
    }

    #[test]
    fn iter_matches_word_accessor() {
        let v = Vocabulary::from_words(["x", "y"].into_iter().map(String::from));
        let collected: Vec<&str> = v.iter().collect();
        assert_eq!(collected, vec!["x", "y"]);
        assert!(!v.is_empty());
    }

    #[test]
    fn selection_is_deterministic() {
        let a = Vocabulary::select(&tfidf_fixture(), 0.2, 100);
        let b = Vocabulary::select(&tfidf_fixture(), 0.2, 100);
        let wa: Vec<&str> = a.iter().collect();
        let wb: Vec<&str> = b.iter().collect();
        assert_eq!(wa, wb);
    }
}
