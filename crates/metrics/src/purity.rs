//! Cluster purity — the paper's quality metric (Figs. 8 and 9e).
//!
//! `purity = (1/n) Σ_clusters max_class |cluster ∩ class|`: each cluster
//! votes for its majority class and purity is the fraction of items covered
//! by those votes. Ranges over `(0, 1]`; trivially 1 when every item has its
//! own cluster, which is why the paper pairs it with fixed `k`.

use crate::contingency::Contingency;

/// Computes purity from aligned predictions and ground-truth labels.
pub fn purity(predicted: &[u32], truth: &[u32]) -> f64 {
    if predicted.is_empty() {
        return 0.0;
    }
    let c = Contingency::new(predicted, truth);
    c.majority_sum() as f64 / c.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering() {
        assert_eq!(purity(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0);
    }

    #[test]
    fn label_permutation_is_irrelevant() {
        assert_eq!(purity(&[1, 1, 0, 0], &[5, 5, 9, 9]), 1.0);
    }

    #[test]
    fn single_cluster_purity_is_majority_fraction() {
        let got = purity(&[0, 0, 0, 0], &[1, 1, 1, 2]);
        assert!((got - 0.75).abs() < 1e-12);
    }

    #[test]
    fn each_item_own_cluster_is_trivially_pure() {
        assert_eq!(purity(&[0, 1, 2, 3], &[0, 0, 1, 1]), 1.0);
    }

    #[test]
    fn known_textbook_example() {
        // Three clusters of mixed classes; majority counts 3 + 2 + 2 = 7/10.
        let predicted = [0, 0, 0, 0, 1, 1, 1, 2, 2, 2];
        let truth = [0, 0, 0, 1, 1, 1, 0, 2, 2, 1];
        assert!((purity(&predicted, &truth) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(purity(&[], &[]), 0.0);
    }

    #[test]
    fn bounded_by_one() {
        let predicted: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let truth: Vec<u32> = (0..100).map(|i| i % 3).collect();
        let p = purity(&predicted, &truth);
        assert!(p > 0.0 && p <= 1.0);
    }
}
