//! Per-iteration instrumentation shared by the baseline and the accelerated
//! algorithm — exactly the series the paper plots (time per iteration,
//! moves, average number of clusters searched).

use std::time::Duration;

/// Measurements of one clustering iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct IterationStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Wall-clock time of the iteration (assignment + mode update).
    pub duration: Duration,
    /// Items that changed cluster this iteration (Figs. 2c, 3d, 4b, 9c, 10d).
    pub moves: usize,
    /// Mean number of candidate clusters searched per item (Figs. 2b, 3c,
    /// 4a, 5b, 9b, 10c). Equals `k` for the full-search baseline.
    pub avg_candidates: f64,
    /// Objective `P(W, Q)` after the iteration.
    pub cost: u64,
}

serde::impl_serde_struct!(IterationStats {
    iteration,
    duration,
    moves,
    avg_candidates,
    cost
});

/// Summary of a finished clustering run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Per-iteration measurements in order.
    pub iterations: Vec<IterationStats>,
    /// Whether the run stopped because no item moved (vs hitting the cap or
    /// a cost increase).
    pub converged: bool,
    /// One-off setup time before the first iteration (for MH-K-Modes this is
    /// the initial assignment pass plus index construction; the paper counts
    /// it in the total, Fig. 7).
    pub setup: Duration,
}

serde::impl_serde_struct!(RunSummary {
    iterations,
    converged,
    setup
});

impl RunSummary {
    /// Number of iterations executed.
    pub fn n_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Total wall-clock time including setup (the paper's Fig. 7/9d/10b).
    pub fn total_time(&self) -> Duration {
        self.setup + self.iterations.iter().map(|s| s.duration).sum::<Duration>()
    }

    /// Cost of the **last recorded pass**, or `None` before any iteration
    /// ran. When a run stopped because the final pass made the cost
    /// strictly worse, that pass stays in the record but its state was
    /// rolled back — the returned assignments/centroids then carry
    /// [`Self::best_cost`], not this value.
    pub fn final_cost(&self) -> Option<u64> {
        self.iterations.last().map(|s| s.cost)
    }

    /// Minimum cost over the recorded iterations. When the driver runs with
    /// cost-increase rollback armed (`stop_on_cost_increase`, the default),
    /// this is the cost of the state the run returned, and it equals
    /// [`Self::final_cost`] unless the stopping pass was rolled back. With
    /// that criterion disabled the trajectory may oscillate below the final
    /// state, and the returned state's cost is [`Self::final_cost`].
    pub fn best_cost(&self) -> Option<u64> {
        self.iterations.iter().map(|s| s.cost).min()
    }

    /// Mean per-iteration duration.
    pub fn mean_iteration_time(&self) -> Duration {
        if self.iterations.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.iterations.iter().map(|s| s.duration).sum();
        total / self.iterations.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter(i: usize, ms: u64, moves: usize, cost: u64) -> IterationStats {
        IterationStats {
            iteration: i,
            duration: Duration::from_millis(ms),
            moves,
            avg_candidates: 10.0,
            cost,
        }
    }

    #[test]
    fn totals_include_setup() {
        let run = RunSummary {
            iterations: vec![iter(1, 100, 5, 50), iter(2, 80, 0, 40)],
            converged: true,
            setup: Duration::from_millis(20),
        };
        assert_eq!(run.n_iterations(), 2);
        assert_eq!(run.total_time(), Duration::from_millis(200));
        assert_eq!(run.final_cost(), Some(40));
        assert_eq!(run.mean_iteration_time(), Duration::from_millis(90));
    }

    #[test]
    fn empty_run() {
        let run = RunSummary {
            iterations: vec![],
            converged: false,
            setup: Duration::ZERO,
        };
        assert_eq!(run.total_time(), Duration::ZERO);
        assert_eq!(run.final_cost(), None);
        assert_eq!(run.best_cost(), None);
        assert_eq!(run.mean_iteration_time(), Duration::ZERO);
    }

    #[test]
    fn best_cost_diverges_from_final_cost_on_a_rolled_back_stop() {
        // Trajectory 50 → 40 → 45: the driver rolled the last pass back, so
        // the returned state carries 40 while the record's last entry is 45.
        let run = RunSummary {
            iterations: vec![iter(1, 10, 5, 50), iter(2, 10, 3, 40), iter(3, 10, 2, 45)],
            converged: true,
            setup: Duration::ZERO,
        };
        assert_eq!(run.final_cost(), Some(45));
        assert_eq!(run.best_cost(), Some(40));
    }
}
