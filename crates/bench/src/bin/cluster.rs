//! `cluster` — command-line clustering over CSV files, through the unified
//! `lshclust` facade, with a train/serve split:
//!
//! ```text
//! cluster fit       --input data.csv --k 1000 --model model.json [options]
//! cluster predict   --model model.json --input new.csv [--output out.csv] [--threads N]
//! cluster inspect   --model model.json
//! cluster serve     --model model.json [--listen ADDR] [--allow-remote-shutdown]
//!                   [--workers N] [--max-batch N] [--flush-us N] [--fixed-flush]
//!                   [--queue-depth N] [--deadline-ms N] [--hot-keys N] [--threads N]
//!                   [--stats-every N]
//! cluster dedup     --input data.csv --threshold T [--bands B] [--rows R]
//!                   [--seed N] [--threads N] [--output FILE] [--ndjson]
//! cluster join      --input data.csv --threshold T [--max-pairs N] [--bands B]
//!                   [--rows R] [--seed N] [--threads N] [--output FILE] [--ndjson]
//! cluster hierarchy --model model.json [--bands B --rows R] [--sim-bands B]
//!                   [--sim-rows R] [--seed N] [--threads N] [--output FILE] [--ndjson]
//! cluster artifact  ls|verify|gc --dir DIR [--max-bytes N]
//! cluster shard-worker
//! ```
//!
//! `fit` trains and (optionally) saves a `FittedModel` artifact; `predict`
//! loads one and assigns unseen rows — values are re-encoded under the
//! model's training schema, so the CSV needs the same columns but may
//! contain new category values (they match nothing); `inspect` summarises a
//! saved artifact without touching any data (envelope version, content
//! hash, and byte size included — it understands both the v1 JSON and the
//! v2 binary envelope).
//!
//! `fit --cache-dir DIR` routes the fit through a content-addressed
//! `ArtifactStore`: refitting an identical `(spec, dataset)` pair is a
//! cache hit that decodes the stored model instead of fitting. `cluster
//! artifact` manages such a store: `ls` lists entries, `verify` re-hashes
//! every entry (non-zero exit if any is corrupt), `gc --max-bytes N`
//! evicts oldest-modified entries until the store fits the cap.
//!
//! `serve` runs a long-lived `ModelServer` daemon speaking newline-delimited
//! JSON over stdin/stdout — or, with `--listen ADDR`, over a socket that
//! accepts many concurrent clients (`host:port` for TCP; a filesystem path
//! for a Unix-domain socket). One request object per line:
//!
//! ```text
//!   {"predict": {"row": ["red", "large"]}, "id": 7}    categorical (strings)
//!   {"predict": {"point": [0.5, 1.5]}}                 numeric
//!   {"predict": {"row": [...], "point": [...]}}        mixed
//!   {"predict": {...}, "deadline_ms": 5}               per-request deadline (0 = none)
//!   {"reload": "model.json"}                           hot reload (control line)
//!   {"stats": true}                                    server introspection
//!   {"shutdown": true}                                 drain + exit (EOF works too)
//! ```
//!
//! `shutdown` stops the whole daemon, so a `--listen` address that is not
//! loopback refuses it (answering `err`) unless `--allow-remote-shutdown`
//! is given — an exposed TCP listener must not hand every network peer an
//! unauthenticated kill switch. Stdin, Unix-socket, and loopback fronts
//! always honor it.
//!
//! and one response per line, in request order: `{"id": 7, "ok": {"cluster":
//! 3, "generation": 0}}` or `{"id": 7, "err": "..."}`. `reload` swaps the
//! model without dropping queued requests — the control-line equivalent of a
//! SIGHUP — and bumps the `generation` every response carries (which also
//! invalidates the server's hot-key prediction cache; size it with
//! `--hot-keys N`, 0 to disable). `--deadline-ms N` sets the default
//! per-request deadline; requests still queued when it lapses resolve
//! `err` without being scored. `--fixed-flush` pins the coalescing window
//! to `--flush-us` instead of the default load-adaptive window. The
//! protocol itself lives in `lshclust::serve::proto`; the socket front in
//! `lshclust::serve::socket`.
//!
//! `--stats-every N` additionally pushes the `{"stats"}` payload as an
//! unsolicited NDJSON line after every N predict requests, so dashboards
//! tail the stream instead of polling; off by default (`0`).
//!
//! `dedup` and `join` run the similarity workloads of `lshclust::sim` over a
//! categorical CSV: MinHash bucket collisions nominate candidate pairs and
//! the exact matching distance verifies each one against `--threshold`, so
//! every emitted pair is a true pair (precision 1.0 by construction — the
//! index can only *miss* pairs). `dedup` groups the verified pairs into
//! duplicate components; `join` emits all pairs closest-first (capped by
//! `--max-pairs`). Both write `a,b,distance` CSV (`--output`, default
//! stdout) or, with `--ndjson`, the full report as one JSON line.
//! `hierarchy` merges a fitted model's k centroids bottom-up into a
//! dendrogram (`merge,a,b,height` CSV or JSON) — exact full pair search by
//! default, LSH-shortlisted when `--bands` is given. All three are
//! byte-identical at any `--threads` count.
//!
//! `shard-worker` turns the process into one shard of a partitioned fit: a
//! blocking NDJSON loop over stdin/stdout speaking the partial-update
//! protocol of `lshclust::shard` (see `docs/ARCHITECTURE.md § Sharded
//! fitting`). It is spawned by a coordinating `cluster fit --shards S
//! --worker-cmd "cluster shard-worker"` — one process per shard — and never
//! invoked by hand.
//!
//! Shared `fit` options:
//!
//! ```text
//!   --input FILE      input CSV (header; optional trailing __label column)
//!   --output FILE     write per-item cluster ids as CSV (default: stdout summary only)
//!   --k N             number of clusters (required unless --spec sets it)
//!   --bands B         LSH bands (default 20; 0 = run the exact baseline)
//!   --rows R          LSH rows per band (default 5)
//!   --max-iter N      iteration cap (default 100)
//!   --seed N          random seed (default 0)
//!   --threads N       assignment threads (default 1 = paper-faithful serial;
//!                     > 1 = Jacobi parallel passes, all families; 0 clamps to 1)
//!   --batch-size N    switch to mini-batch fitting with N items per step
//!                     (default 256 when omitted but another mini-batch flag
//!                     is present)
//!   --steps N         mini-batch steps (default: 10·k/batch, min 50)
//!   --refresh-every N rebuild the centroid shortlist index every N steps
//!                     (default 8; only useful with LSH). Any of these three
//!                     flags switches the fit discipline to mini-batch.
//!   --shards N        partition the fit across N shards (byte-identical to
//!                     --shards 1 at --threads > 1; requires LSH)
//!   --no-closures     disable cluster-closure incremental re-assignment and
//!                     re-evaluate every item each pass (results are
//!                     byte-identical either way; this is the escape hatch)
//!   --worker-cmd CMD  run each shard in its own process spawned from CMD
//!                     (typically "cluster shard-worker"); in-process without
//!   --spec FILE       read a full ClusterSpec as JSON (overrides the flags above)
//!   --warm-start FILE resume fitting from a saved model's centroids
//!   --model FILE      save the trained model artifact (v1 JSON by default)
//!   --v2              write --model as the v2 flat binary envelope instead
//!   --cache-dir DIR   fit through the content-addressed artifact store at DIR
//!                     (identical spec+dataset refits become cache hits)
//!   --dump-spec       print the effective spec as JSON and exit
//!   --json FILE       write the run report (RunReport) as JSON
//!   --quiet           suppress per-iteration progress
//! ```
//!
//! Invoking with flags directly (`cluster --input … --k …`) still works and
//! behaves as `fit`.

use lshclust::{ClusterSpec, Clusterer, Fit, FittedModel, Lsh, RunSummary, Sim, SimSpec};
use lshclust_categorical::io::read_csv;
use lshclust_categorical::{AttrId, Dataset, ValueId, NOT_PRESENT};
use lshclust_metrics::{normalized_mutual_information, purity};
use std::io::Write;
use std::process::ExitCode;

struct FitArgs {
    input: String,
    output: Option<String>,
    k: Option<usize>,
    bands: u32,
    rows: u32,
    max_iter: usize,
    seed: u64,
    threads: usize,
    batch_size: Option<usize>,
    steps: Option<usize>,
    refresh_every: Option<usize>,
    shards: Option<usize>,
    /// Disable cluster-closure incremental re-assignment (`--no-closures`).
    no_closures: bool,
    worker_cmd: Option<String>,
    spec_file: Option<String>,
    warm_start: Option<String>,
    model: Option<String>,
    /// Write `--model` as the v2 flat binary envelope instead of v1 JSON.
    v2: bool,
    /// Root of a content-addressed `ArtifactStore` to fit through.
    cache_dir: Option<String>,
    dump_spec: bool,
    json: Option<String>,
    quiet: bool,
}

/// `cluster artifact` — management verbs over an `ArtifactStore` root.
enum ArtifactCmd {
    Ls,
    Verify,
    Gc { max_bytes: u64 },
}

struct ArtifactArgs {
    dir: String,
    cmd: ArtifactCmd,
}

struct PredictArgs {
    model: String,
    input: String,
    output: Option<String>,
    /// Overrides the model's serving thread count for this batch.
    threads: Option<usize>,
    quiet: bool,
}

struct ServeArgs {
    model: String,
    /// Pool/queue shape; flags overlay `ServerConfig::default()` so the CLI
    /// and the library can never drift apart on defaults.
    config: lshclust::ServerConfig,
    /// Overrides the model's per-batch fan-out thread count (applied to the
    /// initial load *and* re-applied on every hot reload).
    threads: Option<usize>,
    /// Socket to listen on (`host:port` for TCP, a path for Unix domain);
    /// absent = the single-client stdin/stdout loop.
    listen: Option<String>,
    /// Honor `{"shutdown": true}` even on a non-loopback TCP listener.
    /// Off by default: an exposed listener must not give every peer on the
    /// network an unauthenticated kill switch.
    allow_remote_shutdown: bool,
    /// Push the `{"stats"}` payload as an unsolicited NDJSON line after
    /// every N predict requests (0 = off, the default).
    stats_every: u64,
}

/// Shared grammar of `cluster dedup` and `cluster join` (the only
/// difference: `--max-pairs` is join-only).
struct SimArgs {
    input: String,
    threshold: f64,
    bands: u32,
    rows: u32,
    seed: u64,
    threads: usize,
    /// Join output cap (rejected by `dedup`).
    max_pairs: Option<usize>,
    /// Pairs CSV destination; absent = stdout.
    output: Option<String>,
    /// Emit the full report as one JSON line instead of CSV.
    ndjson: bool,
    quiet: bool,
}

struct HierarchyArgs {
    model: String,
    /// `0` (the default) selects the exact full pair search; any other
    /// value shortlists each merge step through the model's LSH family.
    bands: u32,
    rows: u32,
    /// SimHash half of the union scheme for mixed models.
    sim_bands: u32,
    sim_rows: u32,
    seed: u64,
    threads: usize,
    output: Option<String>,
    ndjson: bool,
}

enum Command {
    Fit(Box<FitArgs>),
    Predict(PredictArgs),
    Inspect { model: String },
    Serve(ServeArgs),
    Dedup(SimArgs),
    Join(SimArgs),
    Hierarchy(HierarchyArgs),
    Artifact(ArtifactArgs),
    ShardWorker,
}

const USAGE: &str = "usage:\n  cluster fit --input data.csv --k N [--model model.json [--v2]] [--cache-dir DIR] [--shards N [--worker-cmd CMD]] [options]\n  cluster predict --model model.json --input new.csv [--output out.csv] [--threads N]\n  cluster inspect --model model.json\n  cluster serve --model model.json [--listen ADDR] [--allow-remote-shutdown] [--workers N] [--max-batch N] [--flush-us N] [--fixed-flush] [--queue-depth N] [--deadline-ms N] [--hot-keys N] [--threads N] [--stats-every N]\n    ({\"shutdown\": true} is refused on non-loopback TCP listeners unless --allow-remote-shutdown is given)\n  cluster dedup --input data.csv --threshold T [--bands B] [--rows R] [--seed N] [--threads N] [--output FILE] [--ndjson]\n  cluster join --input data.csv --threshold T [--max-pairs N] [--bands B] [--rows R] [--seed N] [--threads N] [--output FILE] [--ndjson]\n  cluster hierarchy --model model.json [--bands B --rows R] [--sim-bands B] [--sim-rows R] [--seed N] [--threads N] [--output FILE] [--ndjson]\n  cluster artifact ls|verify|gc --dir DIR [--max-bytes N]\n  cluster shard-worker";

fn parse_sim(flags: impl IntoIterator<Item = String>, join: bool) -> Result<SimArgs, String> {
    let mut argv = flags.into_iter();
    let mut args = SimArgs {
        input: String::new(),
        threshold: f64::NAN,
        bands: 16,
        rows: 2,
        seed: 0,
        threads: 1,
        max_pairs: None,
        output: None,
        ndjson: false,
        quiet: false,
    };
    fn parse<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        v.parse().map_err(|e| format!("{name}: {e}"))
    }
    let mut input = None;
    let mut threshold = None;
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--input" => input = Some(value("--input")?),
            "--threshold" => threshold = Some(parse("--threshold", value("--threshold")?)?),
            "--bands" => args.bands = parse("--bands", value("--bands")?)?,
            "--rows" => args.rows = parse("--rows", value("--rows")?)?,
            "--seed" => args.seed = parse("--seed", value("--seed")?)?,
            "--threads" => args.threads = parse("--threads", value("--threads")?)?,
            "--max-pairs" if join => {
                args.max_pairs = Some(parse("--max-pairs", value("--max-pairs")?)?)
            }
            "--output" => args.output = Some(value("--output")?),
            "--ndjson" => args.ndjson = true,
            "--quiet" => args.quiet = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    args.input = input.ok_or("--input is required")?;
    args.threshold = threshold.ok_or("--threshold is required")?;
    if args.threshold.is_nan() || args.threshold < 0.0 {
        return Err("--threshold must be a non-negative number".to_owned());
    }
    if args.bands == 0 {
        return Err("--bands 0 has no candidate source; dedup/join need LSH".to_owned());
    }
    args.threads = args.threads.max(1);
    Ok(args)
}

fn parse_hierarchy(flags: impl IntoIterator<Item = String>) -> Result<HierarchyArgs, String> {
    let mut argv = flags.into_iter();
    let mut args = HierarchyArgs {
        model: String::new(),
        bands: 0,
        rows: 2,
        sim_bands: 8,
        sim_rows: 8,
        seed: 0,
        threads: 1,
        output: None,
        ndjson: false,
    };
    fn parse<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        v.parse().map_err(|e| format!("{name}: {e}"))
    }
    let mut model = None;
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--model" => model = Some(value("--model")?),
            "--bands" => args.bands = parse("--bands", value("--bands")?)?,
            "--rows" => args.rows = parse("--rows", value("--rows")?)?,
            "--sim-bands" => args.sim_bands = parse("--sim-bands", value("--sim-bands")?)?,
            "--sim-rows" => args.sim_rows = parse("--sim-rows", value("--sim-rows")?)?,
            "--seed" => args.seed = parse("--seed", value("--seed")?)?,
            "--threads" => args.threads = parse("--threads", value("--threads")?)?,
            "--output" => args.output = Some(value("--output")?),
            "--ndjson" => args.ndjson = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    args.model = model.ok_or("--model is required")?;
    args.threads = args.threads.max(1);
    Ok(args)
}

fn parse_artifact(flags: impl IntoIterator<Item = String>) -> Result<ArtifactArgs, String> {
    let mut argv = flags.into_iter();
    let verb = argv.next().ok_or("artifact needs a verb: ls, verify, gc")?;
    let mut dir = None;
    let mut max_bytes = None;
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--dir" => dir = Some(value("--dir")?),
            "--max-bytes" => {
                max_bytes = Some(
                    value("--max-bytes")?
                        .parse()
                        .map_err(|e| format!("--max-bytes: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let cmd = match verb.as_str() {
        "ls" => ArtifactCmd::Ls,
        "verify" => ArtifactCmd::Verify,
        "gc" => ArtifactCmd::Gc {
            max_bytes: max_bytes.ok_or("gc requires --max-bytes")?,
        },
        other => return Err(format!("unknown artifact verb `{other}`")),
    };
    if !matches!(cmd, ArtifactCmd::Gc { .. }) && max_bytes.is_some() {
        return Err("--max-bytes only applies to gc".to_owned());
    }
    Ok(ArtifactArgs {
        dir: dir.ok_or("--dir is required")?,
        cmd,
    })
}

fn parse_predict(flags: impl IntoIterator<Item = String>) -> Result<PredictArgs, String> {
    let mut argv = flags.into_iter();
    let mut model = None;
    let mut input = None;
    let mut output = None;
    let mut threads = None;
    let mut quiet = false;
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--model" => model = Some(value("--model")?),
            "--input" => input = Some(value("--input")?),
            "--output" => output = Some(value("--output")?),
            "--threads" => {
                threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--quiet" => quiet = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(PredictArgs {
        model: model.ok_or("--model is required")?,
        input: input.ok_or("--input is required")?,
        output,
        threads,
        quiet,
    })
}

fn parse_serve(flags: impl IntoIterator<Item = String>) -> Result<ServeArgs, String> {
    let mut argv = flags.into_iter();
    let mut args = ServeArgs {
        model: String::new(),
        config: lshclust::ServerConfig::default(),
        threads: None,
        listen: None,
        allow_remote_shutdown: false,
        stats_every: 0,
    };
    fn parse<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        v.parse().map_err(|e| format!("{name}: {e}"))
    }
    let mut model = None;
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--model" => model = Some(value("--model")?),
            "--workers" => {
                args.config.workers = parse("--workers", value("--workers")?)?;
            }
            "--max-batch" => {
                args.config.max_batch = parse("--max-batch", value("--max-batch")?)?;
            }
            "--flush-us" => {
                let us: u64 = parse("--flush-us", value("--flush-us")?)?;
                args.config.flush_latency = std::time::Duration::from_micros(us);
            }
            "--queue-depth" => {
                args.config.queue_depth = parse("--queue-depth", value("--queue-depth")?)?;
            }
            "--deadline-ms" => {
                // Same convention as the protocol's `deadline_ms`: 0 = none.
                let ms: u64 = parse("--deadline-ms", value("--deadline-ms")?)?;
                args.config.default_deadline =
                    (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--fixed-flush" => args.config.adaptive_flush = false,
            "--hot-keys" => {
                args.config.hot_keys = parse("--hot-keys", value("--hot-keys")?)?;
            }
            "--listen" => args.listen = Some(value("--listen")?),
            "--allow-remote-shutdown" => args.allow_remote_shutdown = true,
            "--stats-every" => {
                args.stats_every = parse("--stats-every", value("--stats-every")?)?;
            }
            "--threads" => args.threads = Some(parse("--threads", value("--threads")?)?),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    args.model = model.ok_or("--model is required")?;
    Ok(args)
}

fn parse_command() -> Result<Command, String> {
    let mut argv = std::env::args();
    let _ = argv.next(); // program name
    match argv.next().as_deref() {
        Some("fit") => Ok(Command::Fit(Box::new(parse_fit(argv)?))),
        Some("predict") => Ok(Command::Predict(parse_predict(argv)?)),
        Some("serve") => Ok(Command::Serve(parse_serve(argv)?)),
        Some("dedup") => Ok(Command::Dedup(parse_sim(argv, false)?)),
        Some("join") => Ok(Command::Join(parse_sim(argv, true)?)),
        Some("hierarchy") => Ok(Command::Hierarchy(parse_hierarchy(argv)?)),
        Some("artifact") => Ok(Command::Artifact(parse_artifact(argv)?)),
        Some("shard-worker") => match argv.next() {
            None => Ok(Command::ShardWorker),
            Some(other) => Err(format!("shard-worker takes no arguments, got {other}")),
        },
        Some("inspect") => {
            let mut model = None;
            while let Some(arg) = argv.next() {
                match arg.as_str() {
                    "--model" => model = argv.next(),
                    other => return Err(format!("unknown argument {other}")),
                }
            }
            Ok(Command::Inspect {
                model: model.ok_or("--model is required")?,
            })
        }
        // Legacy invocation: bare flags behave as `fit`.
        Some(flag) if flag.starts_with("--") => {
            let flags = std::iter::once(flag.to_owned()).chain(argv);
            parse_fit(flags).map(|args| Command::Fit(Box::new(args)))
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given".to_owned()),
    }
}

/// Parses the `fit` grammar over any flag stream (subcommand or legacy).
fn parse_fit(flags: impl IntoIterator<Item = String>) -> Result<FitArgs, String> {
    let mut it = flags.into_iter();
    let mut args = FitArgs {
        input: String::new(),
        output: None,
        k: None,
        bands: 20,
        rows: 5,
        max_iter: 100,
        seed: 0,
        threads: 1,
        batch_size: None,
        steps: None,
        refresh_every: None,
        shards: None,
        no_closures: false,
        worker_cmd: None,
        spec_file: None,
        warm_start: None,
        model: None,
        v2: false,
        cache_dir: None,
        dump_spec: false,
        json: None,
        quiet: false,
    };
    let mut input = None;
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--input" => input = Some(value("--input")?),
            "--output" => args.output = Some(value("--output")?),
            "--k" => args.k = Some(value("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--bands" => {
                args.bands = value("--bands")?
                    .parse()
                    .map_err(|e| format!("--bands: {e}"))?
            }
            "--rows" => {
                args.rows = value("--rows")?
                    .parse()
                    .map_err(|e| format!("--rows: {e}"))?
            }
            "--max-iter" => {
                args.max_iter = value("--max-iter")?
                    .parse()
                    .map_err(|e| format!("--max-iter: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--batch-size" => {
                args.batch_size = Some(
                    value("--batch-size")?
                        .parse()
                        .map_err(|e| format!("--batch-size: {e}"))?,
                )
            }
            "--steps" => {
                args.steps = Some(
                    value("--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?,
                )
            }
            "--refresh-every" => {
                args.refresh_every = Some(
                    value("--refresh-every")?
                        .parse()
                        .map_err(|e| format!("--refresh-every: {e}"))?,
                )
            }
            "--shards" => {
                args.shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                )
            }
            "--no-closures" => args.no_closures = true,
            "--worker-cmd" => args.worker_cmd = Some(value("--worker-cmd")?),
            "--spec" => args.spec_file = Some(value("--spec")?),
            "--warm-start" => args.warm_start = Some(value("--warm-start")?),
            "--model" => args.model = Some(value("--model")?),
            "--v2" => args.v2 = true,
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--dump-spec" => args.dump_spec = true,
            "--json" => args.json = Some(value("--json")?),
            "--quiet" => args.quiet = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if let Some(input) = input {
        args.input = input;
    } else if !args.dump_spec {
        return Err("--input is required".to_owned());
    }
    args.threads = args.threads.max(1);
    Ok(args)
}

/// The effective spec: either `--spec FILE` JSON verbatim, or assembled from
/// the individual flags (`--bands 0` selects the exact baseline).
fn build_spec(args: &FitArgs) -> Result<ClusterSpec, String> {
    if let Some(path) = &args.spec_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut spec: ClusterSpec =
            serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
        // An explicit --shards flag overrides the file, like nothing else
        // does: the smoke workflow runs one committed spec at several shard
        // counts. --no-closures gets the same treatment — it is the runtime
        // escape hatch and must work against committed specs.
        if let Some(shards) = args.shards {
            spec = spec.shards(shards);
        }
        if args.no_closures {
            spec = spec.closures(false);
        }
        return Ok(spec);
    }
    let k = args.k.ok_or("--k is required (or provide --spec)")?;
    let lsh = if args.bands == 0 {
        Lsh::None
    } else {
        Lsh::MinHash {
            bands: args.bands,
            rows: args.rows,
        }
    };
    let mut spec = ClusterSpec::new(k)
        .lsh(lsh)
        .seed(args.seed)
        .threads(args.threads)
        .shards(args.shards.unwrap_or(1))
        .closures(!args.no_closures)
        .max_iterations(args.max_iter);
    // Any mini-batch flag flips the fit discipline; unset knobs fall back
    // to the batch-256 default and the 10·k/batch step heuristic.
    if args.batch_size.is_some() || args.steps.is_some() || args.refresh_every.is_some() {
        let batch_size = args.batch_size.unwrap_or(256);
        let Fit::MiniBatch { n_steps, .. } = Fit::mini_batch(k, batch_size) else {
            unreachable!("Fit::mini_batch builds the MiniBatch variant");
        };
        spec = spec.fit(Fit::MiniBatch {
            batch_size,
            n_steps: args.steps.unwrap_or(n_steps),
            refresh_every: args.refresh_every.unwrap_or(8),
        });
    }
    Ok(spec)
}

fn report(summary: &RunSummary, n_items: usize, quiet: bool) {
    if !quiet {
        for s in &summary.iterations {
            eprintln!(
                "iter {:>3}: {:>8.3}s  {:>8} moves  avg shortlist {:>10.2}  cost {}  skipped {:>5.1}%",
                s.iteration,
                s.duration.as_secs_f64(),
                s.moves,
                s.avg_candidates,
                s.cost,
                s.skipped_items as f64 / n_items.max(1) as f64 * 100.0,
            );
        }
    }
    eprintln!(
        "{} iterations, converged: {}, setup {:.3}s, total {:.3}s",
        summary.n_iterations(),
        summary.converged,
        summary.setup.as_secs_f64(),
        summary.total_time().as_secs_f64()
    );
}

fn load_csv(path: &str) -> Result<Dataset, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_csv(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn write_assignments(path: &str, assignments: &[u32]) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut out = std::io::BufWriter::new(file);
    let io = |e: std::io::Error| format!("cannot write {path}: {e}");
    writeln!(out, "item,cluster").map_err(io)?;
    for (i, c) in assignments.iter().enumerate() {
        writeln!(out, "{i},{c}").map_err(io)?;
    }
    out.flush().map_err(io)?;
    eprintln!("wrote {} assignments to {path}", assignments.len());
    Ok(())
}

fn score_against_labels(assignments: &[u32], dataset: &Dataset) {
    if let Some(labels) = dataset.labels() {
        eprintln!(
            "purity {:.4}  nmi {:.4}  (against the __label column)",
            purity(assignments, labels),
            normalized_mutual_information(assignments, labels)
        );
    }
}

fn run_fit(args: FitArgs) -> Result<(), String> {
    let spec = build_spec(&args)?;
    if args.dump_spec {
        println!(
            "{}",
            serde_json::to_string_pretty(&spec).expect("spec serializes")
        );
        return Ok(());
    }
    let dataset = load_csv(&args.input)?;
    eprintln!(
        "{}: {} items x {} attrs{}",
        args.input,
        dataset.n_items(),
        dataset.n_attrs(),
        if dataset.labels().is_some() {
            " (labelled)"
        } else {
            ""
        }
    );
    eprintln!(
        "running {}{} (k={}, seed={}{}) ...",
        match spec.lsh {
            Lsh::None => "K-Modes (full search)".to_owned(),
            Lsh::MinHash { bands, rows } => format!("MH-K-Modes ({bands}b{rows}r)"),
            other => format!("Lsh::{}", other.name()),
        },
        match spec.fit {
            Fit::Full => String::new(),
            Fit::MiniBatch {
                batch_size,
                n_steps,
                ..
            } => format!(", mini-batch {n_steps}x{batch_size}"),
        },
        spec.k,
        spec.seed,
        if args.warm_start.is_some() {
            ", warm start"
        } else {
            ""
        },
    );
    if spec.shards > 1 {
        eprintln!(
            "sharded fit: {} shards, {}",
            spec.shards,
            match &args.worker_cmd {
                Some(cmd) => format!("one `{cmd}` process each"),
                None => "in-process".to_owned(),
            }
        );
    }

    let (model, assignments, run) = match &args.cache_dir {
        Some(dir) => {
            if args.warm_start.is_some() || args.worker_cmd.is_some() {
                return Err(
                    "--cache-dir cannot be combined with --warm-start or --worker-cmd".to_owned(),
                );
            }
            let store = lshclust::ArtifactStore::open(dir).map_err(|e| e.to_string())?;
            let cached = store
                .fit_or_get(&spec, &dataset)
                .map_err(|e| e.to_string())?;
            if cached.hit {
                eprintln!("artifact cache hit: model served from {dir} without fitting");
            } else {
                eprintln!("artifact cache miss: fitted and stored in {dir}");
                report(
                    &cached.run.as_ref().expect("a miss carries the run").summary,
                    dataset.n_items(),
                    args.quiet,
                );
            }
            // Assignments come from the cached model's predict path on hit
            // AND miss: a converged fit's labels can break ties differently
            // from predict, and the same command must write the same
            // --output file whether or not the store already had the model.
            let assignments: Vec<u32> = cached
                .model
                .predict(&dataset)
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(|c| c.0)
                .collect();
            (cached.model, assignments, cached.run)
        }
        None => {
            let mut clusterer = match &args.warm_start {
                Some(path) => {
                    let model = FittedModel::load(path).map_err(|e| format!("{path}: {e}"))?;
                    spec.warm_start(&model)
                }
                None => Clusterer::new(spec),
            };
            if let Some(cmd) = &args.worker_cmd {
                clusterer = clusterer.worker_cmd(cmd.clone());
            }
            let run = clusterer.fit(&dataset).map_err(|e| e.to_string())?;
            report(&run.summary, dataset.n_items(), args.quiet);
            let assignments = run.labels();
            let model = run.model.clone();
            (model, assignments, Some(run))
        }
    };
    score_against_labels(&assignments, &dataset);

    if let Some(path) = &args.model {
        if args.v2 {
            model.save_v2(path).map_err(|e| e.to_string())?;
        } else {
            model.save(path).map_err(|e| e.to_string())?;
        }
        eprintln!(
            "wrote model artifact ({}, k={}, {}) to {path}",
            model.modality(),
            model.k(),
            if args.v2 { "v2 binary" } else { "v1 JSON" },
        );
    }
    if let Some(path) = &args.json {
        match &run {
            Some(run) => {
                let text = serde_json::to_string_pretty(&run.report()).expect("report serializes");
                std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote run report to {path}");
            }
            None => eprintln!("cache hit skipped the fit, so there is no run report for --json"),
        }
    }
    if let Some(path) = &args.output {
        write_assignments(path, &assignments)?;
    }
    Ok(())
}

fn run_artifact(args: ArtifactArgs) -> Result<(), String> {
    let store = lshclust::ArtifactStore::open(&args.dir).map_err(|e| e.to_string())?;
    match args.cmd {
        ArtifactCmd::Ls => {
            let mut entries = store.entries().map_err(|e| e.to_string())?;
            entries.sort_by(|a, b| a.path.cmp(&b.path));
            let total: u64 = entries.iter().map(|e| e.bytes).sum();
            for entry in &entries {
                println!(
                    "{:>12}  {:<8}  {}",
                    entry.bytes,
                    entry.kind,
                    entry.path.display()
                );
            }
            eprintln!("{} entries, {} bytes total", entries.len(), total);
            Ok(())
        }
        ArtifactCmd::Verify => {
            let report = store.verify().map_err(|e| e.to_string())?;
            for path in &report.corrupt {
                eprintln!("corrupt: {}", path.display());
            }
            eprintln!("{} ok, {} corrupt", report.ok, report.corrupt.len());
            if report.corrupt.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "{} corrupt entr{} in {}",
                    report.corrupt.len(),
                    if report.corrupt.len() == 1 {
                        "y"
                    } else {
                        "ies"
                    },
                    args.dir
                ))
            }
        }
        ArtifactCmd::Gc { max_bytes } => {
            let report = store.gc(max_bytes).map_err(|e| e.to_string())?;
            eprintln!(
                "kept {}, evicted {}, reclaimed {} bytes",
                report.kept, report.evicted, report.reclaimed_bytes
            );
            Ok(())
        }
    }
}

fn run_predict(args: PredictArgs) -> Result<(), String> {
    let mut model = FittedModel::load(&args.model).map_err(|e| format!("{}: {e}", args.model))?;
    if let Some(threads) = args.threads {
        model.set_threads(threads);
    }
    eprintln!(
        "{}: {} model, k={}, lsh {}{}",
        args.model,
        model.modality(),
        model.k(),
        model.spec().lsh.name(),
        if model.has_index() {
            " (shortlisted)"
        } else {
            " (full search)"
        },
    );
    let dataset = load_csv(&args.input)?;
    let t = std::time::Instant::now();
    // The CSV was interned under its own dictionaries; translate its ids to
    // the *model's* training schema so they align. Both dictionaries are
    // frozen, so one per-attribute id→id table (unseen values map to
    // NOT_PRESENT and match no centroid value) translates every cell with a
    // single index — no per-row string round-trips. The translated batch
    // then goes through the batched predict path: one scratch per thread,
    // fanned over the model's configured thread count.
    let schema = model
        .schema()
        .ok_or_else(|| format!("{} models cannot serve CSV rows", model.modality()))?
        .clone();
    if schema.n_attrs() != dataset.n_attrs() {
        return Err(format!(
            "{} has {} attributes, model expects {}",
            args.input,
            dataset.n_attrs(),
            schema.n_attrs()
        ));
    }
    let tables: Vec<Vec<ValueId>> = (0..schema.n_attrs())
        .map(|a| {
            let attr = AttrId(a as u32);
            let model_dict = schema.dictionary(attr);
            dataset
                .schema()
                .dictionary(attr)
                .iter()
                .map(|(_, name)| model_dict.get(name).unwrap_or(NOT_PRESENT))
                .collect()
        })
        .collect();
    let mut values = Vec::with_capacity(dataset.n_items() * dataset.n_attrs());
    for i in 0..dataset.n_items() {
        for (table, &v) in tables.iter().zip(dataset.row(i)) {
            values.push(if v == NOT_PRESENT {
                NOT_PRESENT
            } else {
                table[v.idx()]
            });
        }
    }
    let batch = Dataset::from_parts(schema, values, None);
    let assignments: Vec<u32> = model
        .predict(&batch)
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|c| c.0)
        .collect();
    let elapsed = t.elapsed();
    if !args.quiet {
        eprintln!(
            "assigned {} items in {:.3}s ({:.0} items/s)",
            assignments.len(),
            elapsed.as_secs_f64(),
            assignments.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        );
    }
    score_against_labels(&assignments, &dataset);
    if let Some(path) = &args.output {
        write_assignments(path, &assignments)?;
    }
    Ok(())
}

fn run_inspect(path: &str) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let version = FittedModel::sniff_version(&bytes);
    let model = FittedModel::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let spec = model.spec();
    println!("artifact:  {path}");
    println!(
        "format:    {} v{} ({})",
        lshclust::MODEL_FORMAT,
        version.expect("a loadable model sniffs a version"),
        if version == Some(lshclust::MODEL_VERSION_V2) {
            "flat binary"
        } else {
            "JSON"
        }
    );
    println!("bytes:     {}", bytes.len());
    println!(
        "content:   {:016x} (fnv1a-64)",
        lshclust::artifact::content_hash(&bytes)
    );
    println!("modality:  {}", model.modality());
    println!("clusters:  {}", model.k());
    match (model.schema(), model.dim()) {
        (Some(schema), Some(dim)) => println!("shape:     {} attrs + {dim} dims", schema.n_attrs()),
        (Some(schema), None) => println!("shape:     {} attrs", schema.n_attrs()),
        (None, Some(dim)) => println!("shape:     {dim} dims"),
        (None, None) => {}
    }
    println!(
        "lsh:       {} ({})",
        spec.lsh.name(),
        if model.has_index() {
            "centroid index active"
        } else {
            "full-search serving"
        }
    );
    if let Some(gamma) = model.gamma() {
        println!("gamma:     {gamma}");
    }
    println!(
        "closures:  {}",
        if spec.closures {
            "on (incremental re-assignment)"
        } else {
            "off (exhaustive passes)"
        }
    );
    println!("seed:      {}", spec.seed);
    println!(
        "spec:      {}",
        serde_json::to_string(spec).expect("spec serializes")
    );
    Ok(())
}

// ---- similarity workloads: dedup / join / hierarchy ------------------------

/// Renders command output to `--output FILE` or stdout.
fn emit(path: Option<&String>, text: &str) -> Result<(), String> {
    match path {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            std::io::stdout()
                .flush()
                .map_err(|e| format!("stdout: {e}"))
        }
    }
}

fn pairs_csv(pairs: &[lshclust::PairRecord]) -> String {
    let mut out = String::from("a,b,distance\n");
    for p in pairs {
        out.push_str(&format!("{},{},{}\n", p.a, p.b, p.distance));
    }
    out
}

fn sim_spec(args: &SimArgs) -> SimSpec {
    let mut spec = SimSpec::new(args.threshold)
        .lsh(Lsh::MinHash {
            bands: args.bands,
            rows: args.rows,
        })
        .seed(args.seed)
        .threads(args.threads);
    if let Some(cap) = args.max_pairs {
        spec = spec.max_pairs(cap);
    }
    spec
}

fn run_dedup(args: SimArgs) -> Result<(), String> {
    let dataset = load_csv(&args.input)?;
    let report = Sim::new(sim_spec(&args))
        .dedup(&dataset)
        .map_err(|e| e.to_string())?;
    if !args.quiet {
        let all = report.n_items * report.n_items.saturating_sub(1) / 2;
        eprintln!(
            "{}: {} items, {} candidate pairs (of {} total), {} verified <= {}, {} duplicates",
            args.input,
            report.n_items,
            report.candidate_pairs,
            all,
            report.pairs.len(),
            report.threshold,
            report.n_duplicates,
        );
    }
    let text = if args.ndjson {
        let mut line = serde_json::to_string(&report).expect("report serializes");
        line.push('\n');
        line
    } else {
        pairs_csv(&report.pairs)
    };
    emit(args.output.as_ref(), &text)
}

fn run_join(args: SimArgs) -> Result<(), String> {
    let dataset = load_csv(&args.input)?;
    let report = Sim::new(sim_spec(&args))
        .join(&dataset)
        .map_err(|e| e.to_string())?;
    if !args.quiet {
        eprintln!(
            "{}: {} items, {} candidate pairs, {} matched <= {}, emitting {}{}",
            args.input,
            report.n_items,
            report.candidate_pairs,
            report.matched,
            report.threshold,
            report.pairs.len(),
            if report.capped { " (capped)" } else { "" },
        );
    }
    let text = if args.ndjson {
        let mut line = serde_json::to_string(&report).expect("report serializes");
        line.push('\n');
        line
    } else {
        pairs_csv(&report.pairs)
    };
    emit(args.output.as_ref(), &text)
}

fn run_hierarchy(args: HierarchyArgs) -> Result<(), String> {
    let model = FittedModel::load(&args.model).map_err(|e| format!("{}: {e}", args.model))?;
    // `--bands 0` (the default) is the exact full pair search; otherwise the
    // scheme family follows the model's modality.
    let lsh = if args.bands == 0 {
        Lsh::None
    } else {
        match model.modality() {
            "categorical" => Lsh::MinHash {
                bands: args.bands,
                rows: args.rows,
            },
            "numeric" => Lsh::SimHash {
                bands: args.bands,
                rows: args.rows,
            },
            _ => Lsh::Union {
                bands: args.bands,
                rows: args.rows,
                sim_bands: args.sim_bands,
                sim_rows: args.sim_rows,
            },
        }
    };
    let spec = SimSpec::new(0.0)
        .lsh(lsh)
        .seed(args.seed)
        .threads(args.threads);
    let dendro = Sim::new(spec)
        .hierarchy(&model)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "{}: {} model, {} leaves, {} merges ({}), {} shortlist-fallback steps",
        args.model,
        model.modality(),
        dendro.k,
        dendro.merges.len(),
        if args.bands == 0 {
            "exact full search".to_owned()
        } else {
            format!("shortlisted, {} bands", args.bands)
        },
        dendro.fallback_steps,
    );
    let text = if args.ndjson {
        let mut line = serde_json::to_string(&dendro).expect("dendrogram serializes");
        line.push('\n');
        line
    } else {
        let mut out = String::from("merge,a,b,height\n");
        for (i, m) in dendro.merges.iter().enumerate() {
            out.push_str(&format!("{},{},{},{}\n", i, m.a, m.b, m.height));
        }
        out
    };
    emit(args.output.as_ref(), &text)
}

// ---- serve: the NDJSON daemon over a ModelServer ---------------------------
//
// The protocol itself (line parsing, deadline field, ordered replies) lives
// in `lshclust::serve::proto`; the multi-client socket front in
// `lshclust::serve::socket`. This binary only wires stdin/stdout or a
// listener to them.

/// Writer waits are capped (`PredictTicket::wait_deadline`) so a wedged
/// worker pool becomes an error line instead of a daemon that can never be
/// shut down.
const SERVE_WAIT_CAP: std::time::Duration = std::time::Duration::from_secs(30);

fn run_serve(args: ServeArgs) -> Result<(), String> {
    use lshclust::serve::proto::{render_reply, LineOutcome, ProtoEngine};
    use std::io::{BufRead, Write as _};

    let mut model = FittedModel::load(&args.model).map_err(|e| format!("{}: {e}", args.model))?;
    if let Some(threads) = args.threads {
        model.set_threads(threads);
    }
    let config = args.config;
    eprintln!(
        "serving {} model (k={}) from {}: {} workers, batches of up to {} ({}us {} flush), queue {}, hot-keys {}",
        model.modality(),
        model.k(),
        args.model,
        config.workers,
        config.max_batch,
        config.flush_latency.as_micros(),
        if config.adaptive_flush {
            "adaptive"
        } else {
            "fixed"
        },
        config.queue_depth,
        config.hot_keys,
    );
    let server = std::sync::Arc::new(lshclust::ModelServer::start(model, config));
    let engine = ProtoEngine::new(std::sync::Arc::clone(&server), args.threads)
        .stats_every(args.stats_every);

    if let Some(listen) = &args.listen {
        let options = lshclust::SocketOptions::default().wait_cap(SERVE_WAIT_CAP);
        // A path (anything with a separator) means Unix domain; otherwise
        // it parses as host:port TCP.
        let socket = if listen.contains('/') {
            #[cfg(unix)]
            {
                lshclust::SocketServer::bind_unix(std::path::Path::new(listen), engine, options)
            }
            #[cfg(not(unix))]
            {
                return Err(format!(
                    "{listen}: unix-domain sockets are not available on this platform"
                ));
            }
        } else {
            // A non-loopback TCP listener is reachable by untrusted peers;
            // unless the operator opted in, refuse the protocol's shutdown
            // request there — otherwise any client could kill the daemon.
            use std::net::ToSocketAddrs as _;
            let remote_exposed = listen
                .to_socket_addrs()
                .map(|mut addrs| addrs.any(|a| !a.ip().is_loopback()))
                .unwrap_or(false);
            let engine = if remote_exposed && !args.allow_remote_shutdown {
                eprintln!(
                    "serve: {listen} is not loopback; {{\"shutdown\"}} requests will be refused \
                     (pass --allow-remote-shutdown to accept them)"
                );
                engine.allow_shutdown(false)
            } else {
                engine
            };
            lshclust::SocketServer::bind_tcp(listen, engine, options)
        }
        .map_err(|e| format!("{listen}: {e}"))?;
        match socket.local_addr() {
            Some(addr) => eprintln!("serve: listening on {addr}"),
            None => eprintln!("serve: listening on {listen}"),
        }
        let report = socket.wait();
        if let Ok(server) = std::sync::Arc::try_unwrap(server) {
            server.shutdown();
        }
        eprintln!(
            "serve: drained and shut down ({} connections, {} lines, {}/{} tickets resolved)",
            report.connections, report.lines, report.tickets.resolved, report.tickets.submitted,
        );
        return Ok(());
    }

    // stdin front: one printer thread keeps responses in request order —
    // tickets resolve FIFO, control lines ride the same channel.
    let (tx, rx) = std::sync::mpsc::channel();
    let printer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for item in rx {
            let line = render_reply(item, SERVE_WAIT_CAP);
            let mut out = stdout.lock();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    });

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        match engine.handle_line(&line) {
            LineOutcome::Ignore => {}
            LineOutcome::Reply(out) => {
                let _ = tx.send(out);
                // Periodic stats push (`--stats-every`): ordered through the
                // same printer so it lands between responses.
                if let Some(stats) = engine.take_due_stats() {
                    let _ = tx.send(lshclust::serve::proto::Outgoing::Line(stats));
                }
            }
            LineOutcome::Shutdown(out) => {
                let _ = tx.send(out);
                break;
            }
        }
    }
    drop(tx);
    let _ = printer.join();
    drop(engine);
    if let Ok(server) = std::sync::Arc::try_unwrap(server) {
        server.shutdown();
    }
    eprintln!("serve: drained and shut down");
    Ok(())
}

fn main() -> ExitCode {
    let command = match parse_command() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match command {
        Command::Fit(args) => run_fit(*args),
        Command::Predict(args) => run_predict(args),
        Command::Inspect { model } => run_inspect(&model),
        Command::Serve(args) => run_serve(args),
        Command::Dedup(args) => run_dedup(args),
        Command::Join(args) => run_join(args),
        Command::Hierarchy(args) => run_hierarchy(args),
        Command::Artifact(args) => run_artifact(args),
        Command::ShardWorker => {
            let stdin = std::io::stdin();
            lshclust::shard::run_worker(stdin.lock(), std::io::stdout())
                .map_err(|e| format!("shard-worker: {e}"))
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn fit_threads_flag_reaches_the_spec() {
        let args = parse_fit(flags(&["--input", "x.csv", "--k", "10", "--threads", "6"])).unwrap();
        assert_eq!(args.threads, 6);
        let spec = build_spec(&args).unwrap();
        assert_eq!(spec.threads, 6);
    }

    #[test]
    fn fit_threads_zero_clamps_to_serial() {
        let args = parse_fit(flags(&["--input", "x.csv", "--k", "10", "--threads", "0"])).unwrap();
        assert_eq!(args.threads, 1, "--threads 0 is documented as serial");
        assert_eq!(build_spec(&args).unwrap().threads, 1);
    }

    #[test]
    fn dump_spec_json_carries_threads_and_round_trips_through_spec_flag() {
        // `--dump-spec` prints exactly `build_spec(..)` as JSON; feeding that
        // JSON back through `--spec` must reproduce the spec, threads
        // included — the fit/predict thread plumbing round-trips.
        let args = parse_fit(flags(&[
            "--input",
            "x.csv",
            "--k",
            "7",
            "--bands",
            "12",
            "--rows",
            "2",
            "--threads",
            "4",
        ]))
        .unwrap();
        let spec = build_spec(&args).unwrap();
        let json = serde_json::to_string_pretty(&spec).expect("spec serializes");
        assert!(json.contains("\"threads\": 4"), "dump-spec output: {json}");

        // Per-process path: concurrent test runs sharing a temp dir must not
        // race on the spec file.
        let dir =
            std::env::temp_dir().join(format!("lshclust-cluster-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spec.json");
        std::fs::write(&path, &json).unwrap();
        let from_file = parse_fit(flags(&[
            "--input",
            "x.csv",
            "--spec",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let restored = build_spec(&from_file).unwrap();
        assert_eq!(restored, spec);
        assert_eq!(restored.threads, 4);
    }

    #[test]
    fn minibatch_flags_flip_the_fit_discipline() {
        // No flags → Full.
        let args = parse_fit(flags(&["--input", "x.csv", "--k", "100"])).unwrap();
        assert_eq!(build_spec(&args).unwrap().fit, Fit::Full);

        // --batch-size alone derives the step heuristic from the batch.
        let args = parse_fit(flags(&[
            "--input",
            "x.csv",
            "--k",
            "100",
            "--batch-size",
            "10",
        ]))
        .unwrap();
        assert_eq!(
            build_spec(&args).unwrap().fit,
            Fit::MiniBatch {
                batch_size: 10,
                n_steps: 100, // 10·100/10
                refresh_every: 8,
            }
        );

        // --refresh-every alone also flips the discipline (the flag only
        // exists for mini-batch; dropping it silently would be a lie).
        let args = parse_fit(flags(&[
            "--input",
            "x.csv",
            "--k",
            "100",
            "--refresh-every",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            build_spec(&args).unwrap().fit,
            Fit::MiniBatch {
                batch_size: 256,
                n_steps: 50, // 10·100/256 floored at 50
                refresh_every: 4,
            }
        );

        // --steps alone keeps the default batch of 256.
        let args = parse_fit(flags(&["--input", "x.csv", "--k", "100", "--steps", "33"])).unwrap();
        assert_eq!(
            build_spec(&args).unwrap().fit,
            Fit::MiniBatch {
                batch_size: 256,
                n_steps: 33,
                refresh_every: 8,
            }
        );

        // All three knobs explicit.
        let args = parse_fit(flags(&[
            "--input",
            "x.csv",
            "--k",
            "100",
            "--batch-size",
            "64",
            "--steps",
            "20",
            "--refresh-every",
            "5",
        ]))
        .unwrap();
        let spec = build_spec(&args).unwrap();
        assert_eq!(
            spec.fit,
            Fit::MiniBatch {
                batch_size: 64,
                n_steps: 20,
                refresh_every: 5,
            }
        );
        // And the discipline round-trips through --spec JSON.
        let json = serde_json::to_string(&spec).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn shard_flags_reach_the_spec_and_override_spec_files() {
        // Flag-assembled specs default to unsharded.
        let args = parse_fit(flags(&["--input", "x.csv", "--k", "10"])).unwrap();
        assert_eq!(build_spec(&args).unwrap().shards, 1);

        let args = parse_fit(flags(&[
            "--input",
            "x.csv",
            "--k",
            "10",
            "--shards",
            "4",
            "--worker-cmd",
            "cluster shard-worker",
        ]))
        .unwrap();
        assert_eq!(args.worker_cmd.as_deref(), Some("cluster shard-worker"));
        let spec = build_spec(&args).unwrap();
        assert_eq!(spec.shards, 4);

        // --shards overrides a --spec file, so one committed spec can run at
        // several shard counts.
        let dir = std::env::temp_dir().join(format!(
            "lshclust-cluster-cli-shards-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spec.json");
        std::fs::write(&path, serde_json::to_string(&spec).unwrap()).unwrap();
        let from_file = parse_fit(flags(&[
            "--input",
            "x.csv",
            "--spec",
            path.to_str().unwrap(),
            "--shards",
            "2",
        ]))
        .unwrap();
        assert_eq!(build_spec(&from_file).unwrap().shards, 2);
    }

    #[test]
    fn no_closures_flag_reaches_the_spec_and_overrides_spec_files() {
        // Flag-assembled specs default closures on.
        let args = parse_fit(flags(&["--input", "x.csv", "--k", "10"])).unwrap();
        assert!(build_spec(&args).unwrap().closures);

        let args = parse_fit(flags(&["--input", "x.csv", "--k", "10", "--no-closures"])).unwrap();
        let spec = build_spec(&args).unwrap();
        assert!(!spec.closures);

        // --no-closures overrides a --spec file: the escape hatch must work
        // against committed specs without editing them.
        let dir = std::env::temp_dir().join(format!(
            "lshclust-cluster-cli-closures-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spec.json");
        let on_disk = ClusterSpec::new(10).closures(true);
        std::fs::write(&path, serde_json::to_string(&on_disk).unwrap()).unwrap();
        let from_file = parse_fit(flags(&[
            "--input",
            "x.csv",
            "--spec",
            path.to_str().unwrap(),
            "--no-closures",
        ]))
        .unwrap();
        assert!(!build_spec(&from_file).unwrap().closures);
        // Without the flag the file's setting stands.
        let from_file = parse_fit(flags(&[
            "--input",
            "x.csv",
            "--spec",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(build_spec(&from_file).unwrap().closures);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_flags_overlay_the_library_defaults() {
        let args = parse_serve(flags(&["--model", "m.json"])).unwrap();
        assert_eq!(args.config, lshclust::ServerConfig::default());
        assert_eq!(args.threads, None);
        assert_eq!(args.listen, None);
        let args = parse_serve(flags(&[
            "--model",
            "m.json",
            "--workers",
            "3",
            "--flush-us",
            "50",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(args.config.workers, 3);
        assert_eq!(args.config.flush_latency.as_micros(), 50);
        assert_eq!(
            args.config.max_batch,
            lshclust::ServerConfig::default().max_batch
        );
        assert_eq!(args.threads, Some(2));
    }

    #[test]
    fn serve_hardening_flags_parse() {
        let args = parse_serve(flags(&[
            "--model",
            "m.json",
            "--listen",
            "127.0.0.1:7777",
            "--deadline-ms",
            "250",
            "--fixed-flush",
            "--hot-keys",
            "512",
        ]))
        .unwrap();
        assert_eq!(args.listen.as_deref(), Some("127.0.0.1:7777"));
        assert_eq!(
            args.config.default_deadline,
            Some(std::time::Duration::from_millis(250))
        );
        assert!(!args.config.adaptive_flush);
        assert_eq!(args.config.hot_keys, 512);
        // Remote shutdown stays opt-in; the stats push stays off.
        assert!(!args.allow_remote_shutdown);
        assert_eq!(args.stats_every, 0);
        let pushing = parse_serve(flags(&["--model", "m.json", "--stats-every", "100"])).unwrap();
        assert_eq!(pushing.stats_every, 100);
        let opted = parse_serve(flags(&[
            "--model",
            "m.json",
            "--listen",
            "0.0.0.0:7777",
            "--allow-remote-shutdown",
        ]))
        .unwrap();
        assert!(opted.allow_remote_shutdown);

        // --deadline-ms 0 pins "no deadline", mirroring the wire field.
        let unbounded = parse_serve(flags(&["--model", "m.json", "--deadline-ms", "0"])).unwrap();
        assert_eq!(unbounded.config.default_deadline, None);
    }

    #[test]
    fn submit_with_backpressure_serves_a_pipe_larger_than_the_queue() {
        use lshclust::{Clusterer, DatasetBuilder};
        let mut b = DatasetBuilder::anonymous(2);
        for row in [["a", "b"], ["a", "c"], ["x", "y"], ["x", "z"]] {
            b.push_str_row(&row, None).unwrap();
        }
        let ds = b.finish();
        let run = Clusterer::new(ClusterSpec::new(2).seed(1))
            .fit(&ds)
            .unwrap();
        // A queue far smaller than the request stream: with backpressure the
        // single producer blocks instead of shedding, so everything serves.
        let server = lshclust::ModelServer::start(
            run.model.clone(),
            lshclust::ServerConfig::default()
                .workers(1)
                .max_batch(2)
                .queue_depth(2),
        );
        let tickets: Vec<_> = (0..100)
            .map(|i| {
                let row = ds.row(i % 4).to_vec();
                lshclust::serve::proto::submit_with_backpressure(|| server.submit_row(row.clone()))
                    .unwrap()
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let served = t.wait().unwrap();
            assert_eq!(served.cluster, run.assignments[i % 4]);
        }
        server.shutdown();
    }

    #[test]
    fn fit_persistence_flags_parse() {
        let args = parse_fit(flags(&[
            "--input",
            "x.csv",
            "--k",
            "10",
            "--model",
            "m.bin",
            "--v2",
            "--cache-dir",
            "/tmp/store",
        ]))
        .unwrap();
        assert!(args.v2);
        assert_eq!(args.cache_dir.as_deref(), Some("/tmp/store"));
        assert_eq!(args.model.as_deref(), Some("m.bin"));

        let plain = parse_fit(flags(&["--input", "x.csv", "--k", "10"])).unwrap();
        assert!(!plain.v2, "v1 JSON stays the pinned default");
        assert_eq!(plain.cache_dir, None);
    }

    #[test]
    fn artifact_verbs_parse() {
        let ls = parse_artifact(flags(&["ls", "--dir", "/tmp/store"])).unwrap();
        assert!(matches!(ls.cmd, ArtifactCmd::Ls));
        assert_eq!(ls.dir, "/tmp/store");

        let verify = parse_artifact(flags(&["verify", "--dir", "d"])).unwrap();
        assert!(matches!(verify.cmd, ArtifactCmd::Verify));

        let gc = parse_artifact(flags(&["gc", "--dir", "d", "--max-bytes", "4096"])).unwrap();
        assert!(matches!(gc.cmd, ArtifactCmd::Gc { max_bytes: 4096 }));

        assert!(parse_artifact(flags(&["gc", "--dir", "d"])).is_err());
        assert!(parse_artifact(flags(&["ls", "--dir", "d", "--max-bytes", "1"])).is_err());
        assert!(parse_artifact(flags(&["frob", "--dir", "d"])).is_err());
    }

    #[test]
    fn sim_flags_parse_and_validate() {
        let args = parse_sim(
            flags(&[
                "--input",
                "x.csv",
                "--threshold",
                "1.5",
                "--bands",
                "24",
                "--rows",
                "1",
                "--seed",
                "9",
                "--threads",
                "4",
            ]),
            false,
        )
        .unwrap();
        assert_eq!(args.threshold, 1.5);
        assert_eq!((args.bands, args.rows), (24, 1));
        assert_eq!(args.seed, 9);
        assert_eq!(args.threads, 4);
        assert_eq!(args.max_pairs, None);

        // --max-pairs is join-only.
        let join = parse_sim(
            flags(&["--input", "x.csv", "--threshold", "1", "--max-pairs", "10"]),
            true,
        )
        .unwrap();
        assert_eq!(join.max_pairs, Some(10));
        assert!(parse_sim(
            flags(&["--input", "x.csv", "--threshold", "1", "--max-pairs", "10"]),
            false,
        )
        .is_err());

        // --threshold is required and must be a non-negative number.
        assert!(parse_sim(flags(&["--input", "x.csv"]), false).is_err());
        assert!(parse_sim(flags(&["--input", "x.csv", "--threshold", "-1"]), false).is_err());
        assert!(parse_sim(flags(&["--input", "x.csv", "--threshold", "NaN"]), false).is_err());
        // --bands 0 has no candidate source.
        assert!(parse_sim(
            flags(&["--input", "x.csv", "--threshold", "1", "--bands", "0"]),
            false,
        )
        .is_err());
    }

    #[test]
    fn hierarchy_flags_default_to_exact_search() {
        let args = parse_hierarchy(flags(&["--model", "m.json"])).unwrap();
        assert_eq!(args.bands, 0, "--bands 0 = exact full pair search");
        assert_eq!(args.threads, 1);
        let args = parse_hierarchy(flags(&[
            "--model",
            "m.json",
            "--bands",
            "12",
            "--rows",
            "1",
            "--sim-bands",
            "6",
            "--sim-rows",
            "4",
            "--threads",
            "3",
        ]))
        .unwrap();
        assert_eq!((args.bands, args.rows), (12, 1));
        assert_eq!((args.sim_bands, args.sim_rows), (6, 4));
        assert_eq!(args.threads, 3);
        assert!(
            parse_hierarchy(flags(&["--bands", "4"])).is_err(),
            "--model is required"
        );
    }

    #[test]
    fn predict_accepts_a_threads_override() {
        let args = parse_predict(flags(&[
            "--model",
            "m.json",
            "--input",
            "x.csv",
            "--threads",
            "8",
        ]))
        .unwrap();
        assert_eq!(args.threads, Some(8));
        let no_override = parse_predict(flags(&["--model", "m.json", "--input", "x.csv"])).unwrap();
        assert_eq!(no_override.threads, None);
    }
}
