//! Synthetic dataset generators.
//!
//! Two generators substitute for resources the paper used but that are not
//! obtainable:
//!
//! * [`datgen`] re-implements the generative process of the `datgen` tool
//!   (datasetgenerator.com, now defunct) exactly as §IV-A describes it:
//!   a 40 000-value category domain, one conjunctive rule per cluster binding
//!   40–80% of the attributes to fixed values, remaining attributes free.
//! * [`corpus`] synthesises a Yahoo!-Answers-like topic-labelled question
//!   corpus (per-topic Zipfian keyword vocabularies over a shared background
//!   vocabulary, with optional user mislabel noise) for the real-data
//!   pipeline of §IV-B, whose original corpus is proprietary.
//!
//! Both are fully deterministic given their seed, per DESIGN.md §7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod datgen;
pub mod zipf;

pub use corpus::{CorpusConfig, Question, SyntheticCorpus};
pub use datgen::{generate, DatgenConfig};
