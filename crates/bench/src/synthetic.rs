//! Paired baseline / MH-K-Modes runs on datgen-style synthetic data —
//! the engine behind Figs. 2–8.

use crate::scale::{Settings, SyntheticShape};
use lshclust_categorical::Dataset;
use lshclust_core::error_bound::{audit, BoundReport};
use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::init::{initial_modes, InitMethod};
use lshclust_kmodes::{KModes, KModesConfig, KModesResult};
use lshclust_metrics::{adjusted_rand_index, normalized_mutual_information, purity};
use lshclust_minhash::index::LshIndexBuilder;
use lshclust_minhash::Banding;
use std::time::Instant;

/// Quality metrics of one clustering against the generator's ground truth.
#[derive(Clone, Copy, Debug)]
pub struct Quality {
    /// Cluster purity (the paper's metric).
    pub purity: f64,
    /// Normalised mutual information (extended analysis).
    pub nmi: f64,
    /// Adjusted Rand index (extended analysis).
    pub ari: f64,
}

/// One MH-K-Modes run tagged with its banding.
#[derive(Clone, Debug)]
pub struct MhRun {
    /// The banding label (e.g. `20b5r`).
    pub banding: Banding,
    /// The run result.
    pub result: lshclust_core::mhkmodes::MhKModesResult,
    /// Quality vs ground truth.
    pub quality: Quality,
}

/// A complete experiment on one synthetic dataset: the baseline plus one MH
/// run per banding, all from identical initial centroids.
pub struct RunSet {
    /// The scaled shape that was actually run.
    pub shape: SyntheticShape,
    /// Baseline K-Modes result.
    pub baseline: KModesResult,
    /// Baseline quality.
    pub baseline_quality: Quality,
    /// Accelerated runs.
    pub mh_runs: Vec<MhRun>,
}

/// Computes all three quality metrics of an assignment against labels.
pub fn quality_of(assignments: &[lshclust_categorical::ClusterId], labels: &[u32]) -> Quality {
    let predicted: Vec<u32> = assignments.iter().map(|c| c.0).collect();
    Quality {
        purity: purity(&predicted, labels),
        nmi: normalized_mutual_information(&predicted, labels),
        ari: adjusted_rand_index(&predicted, labels),
    }
}

/// Generates the scaled dataset for `shape`.
pub fn dataset_for(shape: SyntheticShape, settings: &Settings) -> Dataset {
    generate(&DatgenConfig::new(shape.n_items, shape.n_clusters, shape.n_attrs).seed(settings.seed))
}

/// Runs the baseline and every requested banding on `shape`'s dataset.
///
/// All runs share the same randomly selected initial centroids (paper §IV-A:
/// "the same initial centroid points were selected"), and the baseline's
/// iteration cap applies to all.
pub fn run_experiment(
    shape: SyntheticShape,
    bandings: &[Banding],
    settings: &Settings,
    max_iterations: usize,
) -> RunSet {
    let shape = shape.scaled(settings.scale);
    let dataset = dataset_for(shape, settings);
    let labels = dataset
        .labels()
        .expect("datgen datasets are labelled")
        .to_vec();

    let init_start = Instant::now();
    let modes = initial_modes(
        &dataset,
        shape.n_clusters,
        InitMethod::RandomItems,
        settings.seed,
    );
    let init_time = init_start.elapsed();

    let baseline = KModes::new(
        KModesConfig::new(shape.n_clusters)
            .seed(settings.seed)
            .max_iterations(max_iterations),
    )
    .fit_from(&dataset, modes.clone(), init_time);
    let baseline_quality = quality_of(&baseline.assignments, &labels);

    let mh_runs = bandings
        .iter()
        .map(|&banding| {
            let start = Instant::now();
            let result = MhKModes::new(
                MhKModesConfig::new(shape.n_clusters, banding)
                    .seed(settings.seed)
                    .max_iterations(max_iterations),
            )
            .fit_from(&dataset, modes.clone(), start);
            let quality = quality_of(&result.assignments, &labels);
            MhRun {
                banding,
                result,
                quality,
            }
        })
        .collect();

    RunSet {
        shape,
        baseline,
        baseline_quality,
        mh_runs,
    }
}

/// Runs the §III-C error-bound audit on `shape`'s dataset: builds an index
/// over ground-truth assignments and measures the shortlist miss rate
/// against the analytic bound, for each banding.
pub fn run_bound_audit(
    shape: SyntheticShape,
    bandings: &[Banding],
    settings: &Settings,
) -> Vec<(Banding, BoundReport)> {
    let shape = shape.scaled(settings.scale);
    let dataset = dataset_for(shape, settings);
    let labels = dataset.labels().unwrap();
    let assignments: Vec<lshclust_categorical::ClusterId> = labels
        .iter()
        .map(|&l| lshclust_categorical::ClusterId(l))
        .collect();
    let mut modes = initial_modes(
        &dataset,
        shape.n_clusters,
        InitMethod::RandomItems,
        settings.seed,
    );
    modes.recompute(&dataset, &assignments);
    bandings
        .iter()
        .map(|&banding| {
            let index = LshIndexBuilder::new(banding)
                .seed(settings.seed)
                .build(&dataset, &assignments);
            (banding, audit(&dataset, &modes, &index, &assignments))
        })
        .collect()
}

/// The headline number: baseline total time divided by MH total time.
pub fn speedup(set: &RunSet, run: &MhRun) -> f64 {
    set.baseline.summary.total_time().as_secs_f64() / run.result.summary.total_time().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::SHAPE_FIG2;

    fn tiny_settings() -> Settings {
        Settings {
            scale: 0.002,
            seed: 7,
            out_dir: None,
        }
    }

    #[test]
    fn paired_runs_complete_and_report() {
        let set = run_experiment(
            SHAPE_FIG2,
            &[Banding::new(20, 5), Banding::new(1, 1)],
            &tiny_settings(),
            30,
        );
        assert_eq!(set.mh_runs.len(), 2);
        assert!(set.baseline.summary.n_iterations() >= 1);
        for run in &set.mh_runs {
            assert!(run.result.summary.n_iterations() >= 1);
            assert!(run.quality.purity > 0.0 && run.quality.purity <= 1.0);
        }
        assert!(set.baseline_quality.purity > 0.0);
    }

    #[test]
    fn shortlist_stays_below_k() {
        let set = run_experiment(SHAPE_FIG2, &[Banding::new(20, 5)], &tiny_settings(), 30);
        let k = set.shape.n_clusters as f64;
        for s in &set.mh_runs[0].result.summary.iterations {
            assert!(s.avg_candidates <= k);
        }
    }

    #[test]
    fn mh_purity_comparable_to_baseline() {
        let set = run_experiment(SHAPE_FIG2, &[Banding::new(20, 5)], &tiny_settings(), 30);
        let diff = set.baseline_quality.purity - set.mh_runs[0].quality.purity;
        // Paper claim: comparable purity. Allow a loose margin at tiny scale.
        assert!(diff < 0.15, "purity dropped by {diff}");
    }

    #[test]
    fn bound_audit_reports_every_banding() {
        let reports = run_bound_audit(
            SHAPE_FIG2,
            &[Banding::new(20, 5), Banding::new(1, 1)],
            &tiny_settings(),
        );
        assert_eq!(reports.len(), 2);
        for (_, r) in &reports {
            assert!(r.n_items > 0);
            assert!(r.miss_rate <= 1.0);
        }
    }

    #[test]
    fn speedup_is_positive() {
        let set = run_experiment(SHAPE_FIG2, &[Banding::new(20, 5)], &tiny_settings(), 30);
        assert!(speedup(&set, &set.mh_runs[0]) > 0.0);
    }
}
