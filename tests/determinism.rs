//! Workspace-wide determinism policy (DESIGN.md §7): every experiment is a
//! pure function of its seed. These tests pin that across crate boundaries.

use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
use lshclust_datagen::corpus::{CorpusConfig, SyntheticCorpus};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::init::{initial_modes, InitMethod};
use lshclust_kmodes::{KModes, KModesConfig};
use lshclust_minhash::index::LshIndexBuilder;
use lshclust_minhash::signature::SignatureGenerator;
use lshclust_minhash::{Banding, MixHashFamily};
use lshclust_text::{vectorize, TfIdf, Vocabulary};

#[test]
fn full_synthetic_pipeline_is_reproducible() {
    let run = || {
        let dataset = generate(&DatgenConfig::new(300, 30, 25).seed(99));
        let result = MhKModes::new(
            MhKModesConfig::new(30, Banding::new(12, 2))
                .seed(99)
                .max_iterations(25),
        )
        .fit(&dataset);
        (result.assignments, result.summary.n_iterations())
    };
    let (a1, i1) = run();
    let (a2, i2) = run();
    assert_eq!(a1, a2);
    assert_eq!(i1, i2);
}

#[test]
fn full_text_pipeline_is_reproducible() {
    let run = || {
        let corpus = SyntheticCorpus::generate(&CorpusConfig::new(8, 30).seed(5));
        let mut tfidf = TfIdf::new(corpus.n_topics);
        for (text, topic) in corpus.labelled_texts() {
            tfidf.add_document(topic, text);
        }
        let vocab = Vocabulary::select(&tfidf, 0.5, 1_000);
        let dataset = vectorize(&vocab, corpus.labelled_texts());
        let result = KModes::new(KModesConfig::new(8).seed(5).max_iterations(15)).fit(&dataset);
        (vocab.len(), result.assignments)
    };
    let (v1, a1) = run();
    let (v2, a2) = run();
    assert_eq!(v1, v2);
    assert_eq!(a1, a2);
}

#[test]
fn signatures_are_stable_across_processes_in_spirit() {
    // Signature values must depend only on (seed, element set) — pinned to
    // concrete values so accidental hash-function changes are caught.
    let generator = SignatureGenerator::new(MixHashFamily::new(4, 1234));
    let sig = generator.signature([1u64, 2, 3]);
    let again = SignatureGenerator::new(MixHashFamily::new(4, 1234)).signature([3u64, 2, 1]);
    assert_eq!(sig, again);
    // Different seed changes everything.
    let other = SignatureGenerator::new(MixHashFamily::new(4, 1235)).signature([1u64, 2, 3]);
    assert_ne!(sig, other);
}

#[test]
fn index_construction_is_deterministic() {
    let dataset = generate(&DatgenConfig::new(150, 15, 20).seed(77));
    let assignments: Vec<lshclust_categorical::ClusterId> = dataset
        .labels()
        .unwrap()
        .iter()
        .map(|&l| lshclust_categorical::ClusterId(l))
        .collect();
    let build = || {
        let index = LshIndexBuilder::new(Banding::new(8, 2))
            .seed(77)
            .build(&dataset, &assignments);
        let mut scratch = index.make_scratch(15);
        let mut shortlists = Vec::new();
        for item in 0..dataset.n_items() as u32 {
            index.shortlist(item, &mut scratch, false);
            let mut sl = scratch.clusters.clone();
            sl.sort();
            shortlists.push(sl);
        }
        (index.stats(), shortlists)
    };
    let (s1, l1) = build();
    let (s2, l2) = build();
    assert_eq!(s1, s2);
    assert_eq!(l1, l2);
}

#[test]
fn initialisation_is_shared_between_algorithms() {
    // The controlled-comparison requirement: same seed ⇒ same initial modes
    // for both the baseline and MH (paper §IV-A).
    let dataset = generate(&DatgenConfig::new(200, 20, 15).seed(55));
    let a = initial_modes(&dataset, 20, InitMethod::RandomItems, 55);
    let b = initial_modes(&dataset, 20, InitMethod::RandomItems, 55);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_clusterings() {
    let dataset = generate(&DatgenConfig::new(300, 30, 25).seed(1));
    let r1 = KModes::new(KModesConfig::new(30).seed(1).max_iterations(10)).fit(&dataset);
    let r2 = KModes::new(KModesConfig::new(30).seed(2).max_iterations(10)).fit(&dataset);
    assert_ne!(r1.assignments, r2.assignments, "seeds should matter");
}
