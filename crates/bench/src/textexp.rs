//! The real-data pipeline of §IV-B on the synthetic Yahoo!-Answers-like
//! corpus: corpus → TF-IDF → vocabulary → binary items → clustering —
//! the engine behind Figs. 9–10.

use crate::scale::Settings;
use crate::synthetic::{quality_of, MhRun, Quality};
use lshclust_categorical::Dataset;
use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
use lshclust_datagen::corpus::{CorpusConfig, SyntheticCorpus};
use lshclust_kmodes::init::{initial_modes, InitMethod};
use lshclust_kmodes::{KModes, KModesConfig, KModesResult};
use lshclust_minhash::Banding;
use lshclust_text::{vectorize, TfIdf, Vocabulary};
use std::time::Instant;

/// Parameters of a text experiment (Fig. 9 uses threshold 0.7, Fig. 10 uses
/// 0.3 and caps iterations at 10).
#[derive(Clone, Debug)]
pub struct TextExperiment {
    /// TF-IDF selection threshold.
    pub tfidf_threshold: f64,
    /// "Up to 10000 words from each topic" (paper).
    pub max_words_per_topic: usize,
    /// Iteration cap (paper: unlimited for 0.7, 10 for 0.3).
    pub max_iterations: usize,
    /// Bandings to run.
    pub bandings: Vec<Banding>,
}

/// Result bundle of one text experiment.
pub struct TextRunSet {
    /// Items actually clustered.
    pub n_items: usize,
    /// Vocabulary size (= attributes).
    pub n_attrs: usize,
    /// Topics (= k).
    pub n_topics: usize,
    /// Baseline result.
    pub baseline: KModesResult,
    /// Baseline quality.
    pub baseline_quality: Quality,
    /// Accelerated runs.
    pub mh_runs: Vec<MhRun>,
}

/// Scales the paper's corpus parameters (2 916 topics × ≤100 questions).
pub fn corpus_for(settings: &Settings) -> SyntheticCorpus {
    let n_topics = ((2_916.0 * settings.scale).round() as usize).max(4);
    // Questions per topic stay at the paper's 100 — scaling only the topic
    // count keeps items-per-cluster (the error bound's |C_n|) faithful.
    SyntheticCorpus::generate(&CorpusConfig::new(n_topics, 100).seed(settings.seed))
}

/// Rescales the paper's TF-IDF threshold to a smaller topic count.
///
/// TF-IDF scores are bounded by `idf_max = log10(N)`; the paper's absolute
/// thresholds (0.7, 0.3) assume N = 2 916 topics (`idf_max ≈ 3.46`). At a
/// scaled-down N the same *selectivity* corresponds to a proportionally
/// smaller absolute threshold, so we scale by `log10(N) / log10(2916)`.
pub fn scaled_threshold(paper_threshold: f64, n_topics: usize) -> f64 {
    paper_threshold * (n_topics as f64).log10() / 2916f64.log10()
}

/// Runs the full §IV-B pipeline on a generated corpus. `threshold` is the
/// *paper* threshold; it is rescaled to the corpus's topic count via
/// [`scaled_threshold`].
pub fn build_text_dataset(
    corpus: &SyntheticCorpus,
    threshold: f64,
    max_words_per_topic: usize,
) -> Dataset {
    let mut tfidf = TfIdf::new(corpus.n_topics);
    for (text, topic) in corpus.labelled_texts() {
        tfidf.add_document(topic, text);
    }
    let effective = scaled_threshold(threshold, corpus.n_topics);
    let vocab = Vocabulary::select(&tfidf, effective, max_words_per_topic);
    assert!(
        !vocab.is_empty(),
        "threshold {threshold} (effective {effective:.3}) selected no vocabulary"
    );
    vectorize(&vocab, corpus.labelled_texts())
}

/// Runs the baseline and each banding on the text dataset (shared init).
pub fn run_text_experiment(exp: &TextExperiment, settings: &Settings) -> TextRunSet {
    let corpus = corpus_for(settings);
    let dataset = build_text_dataset(&corpus, exp.tfidf_threshold, exp.max_words_per_topic);
    let labels = dataset
        .labels()
        .expect("vectorize attaches topics")
        .to_vec();
    let k = corpus.n_topics;

    let init_start = Instant::now();
    let modes = initial_modes(&dataset, k, InitMethod::RandomItems, settings.seed);
    let init_time = init_start.elapsed();

    let baseline = KModes::new(
        KModesConfig::new(k)
            .seed(settings.seed)
            .max_iterations(exp.max_iterations),
    )
    .fit_from(&dataset, modes.clone(), init_time);
    let baseline_quality = quality_of(&baseline.assignments, &labels);

    let mh_runs = exp
        .bandings
        .iter()
        .map(|&banding| {
            let start = Instant::now();
            let result = MhKModes::new(
                MhKModesConfig::new(k, banding)
                    .seed(settings.seed)
                    .max_iterations(exp.max_iterations),
            )
            .fit_from(&dataset, modes.clone(), start);
            let quality = quality_of(&result.assignments, &labels);
            MhRun {
                banding,
                result,
                quality,
            }
        })
        .collect();

    TextRunSet {
        n_items: dataset.n_items(),
        n_attrs: dataset.n_attrs(),
        n_topics: k,
        baseline,
        baseline_quality,
        mh_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> Settings {
        Settings {
            scale: 0.003,
            seed: 3,
            out_dir: None,
        } // ~9 topics
    }

    fn tiny_experiment() -> TextExperiment {
        TextExperiment {
            tfidf_threshold: 0.7,
            max_words_per_topic: 10_000,
            max_iterations: 15,
            bandings: vec![Banding::new(1, 1)],
        }
    }

    #[test]
    fn pipeline_produces_sparse_binary_dataset() {
        let settings = tiny_settings();
        let corpus = corpus_for(&settings);
        let ds = build_text_dataset(&corpus, 0.7, 10_000);
        assert_eq!(ds.n_items(), corpus.len());
        assert!(ds.n_attrs() > 0);
        // Sparse: far fewer present features than attributes on average.
        let avg_present: f64 = (0..ds.n_items())
            .map(|i| ds.present_count(i) as f64)
            .sum::<f64>()
            / ds.n_items() as f64;
        assert!(avg_present < ds.n_attrs() as f64 / 2.0);
    }

    #[test]
    fn lower_threshold_grows_vocabulary() {
        let settings = tiny_settings();
        let corpus = corpus_for(&settings);
        let hi = build_text_dataset(&corpus, 0.7, 10_000);
        let lo = build_text_dataset(&corpus, 0.3, 10_000);
        assert!(
            lo.n_attrs() >= hi.n_attrs(),
            "0.3-threshold vocab {} smaller than 0.7-threshold {}",
            lo.n_attrs(),
            hi.n_attrs()
        );
    }

    #[test]
    fn text_experiment_runs_end_to_end() {
        let set = run_text_experiment(&tiny_experiment(), &tiny_settings());
        assert_eq!(set.mh_runs.len(), 1);
        assert!(set.baseline_quality.purity > 0.0);
        assert!(set.mh_runs[0].quality.purity > 0.0);
        assert!(set.n_items > 0 && set.n_attrs > 0 && set.n_topics >= 4);
    }

    #[test]
    fn shortlists_shrink_search_space() {
        let set = run_text_experiment(&tiny_experiment(), &tiny_settings());
        let k = set.n_topics as f64;
        let last = set.mh_runs[0].result.summary.iterations.last().unwrap();
        assert!(last.avg_candidates <= k);
    }
}
