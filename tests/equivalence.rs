//! The paper's correctness notion (§III-C): "the correctness here means that
//! the clustering result is the same as the original algorithm without using
//! the index". These tests verify exact equivalence whenever the shortlist
//! provably contains the true best cluster, and bounded divergence otherwise.

use lshclust_categorical::ClusterId;
use lshclust_core::framework::CentroidModel;
use lshclust_core::mhkmodes::{paired_run, KModesModel};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::assign::best_cluster_full;
use lshclust_kmodes::init::{initial_modes, InitMethod};
use lshclust_minhash::index::LshIndexBuilder;
use lshclust_minhash::Banding;

/// With saturating banding (many bands, one row) every pair with any shared
/// value collides, so MH-K-Modes must replay the baseline exactly: same
/// assignments, same iteration count, same costs.
#[test]
fn saturating_banding_replays_baseline_exactly() {
    let dataset = generate(&DatgenConfig::new(300, 30, 30).seed(21));
    let (baseline, mh) = paired_run(&dataset, 30, Banding::new(128, 1), 21, 40);
    assert_eq!(baseline.assignments, mh.assignments);
    let base_costs: Vec<u64> = baseline.summary.iterations.iter().map(|s| s.cost).collect();
    let mh_costs: Vec<u64> = mh.summary.iterations.iter().map(|s| s.cost).collect();
    // MH setup absorbs the baseline's first full pass; iteration i of MH
    // corresponds to iteration i+1 of the baseline.
    assert_eq!(&base_costs[1..], &mh_costs[..], "cost trajectories diverged");
    assert_eq!(baseline.summary.n_iterations(), mh.summary.n_iterations() + 1);
}

/// Restricted search over the exact full cluster set equals full search,
/// item by item (the `best_among`/`best_full` contract the framework needs).
#[test]
fn best_among_full_candidate_set_equals_best_full() {
    let dataset = generate(&DatgenConfig::new(200, 25, 20).seed(8));
    let mut modes = initial_modes(&dataset, 25, InitMethod::RandomItems, 8);
    let assignments: Vec<ClusterId> =
        dataset.labels().unwrap().iter().map(|&l| ClusterId(l % 25)).collect();
    modes.recompute(&dataset, &assignments);
    let model = KModesModel::new(&dataset, modes.clone());
    let all: Vec<ClusterId> = (0..25).map(ClusterId).collect();
    for item in 0..dataset.n_items() as u32 {
        let full = model.best_full(item);
        let among = model.best_among(item, &all).unwrap();
        assert_eq!(full.0, among.0, "item {item}");
        assert_eq!(full.1, among.1, "item {item}");
        // And both agree with the raw kernel.
        let kernel = best_cluster_full(dataset.row(item as usize), &modes);
        assert_eq!(kernel.0, full.0);
    }
}

/// When the shortlist contains the true best cluster for every item, one
/// shortlisted pass must produce exactly the assignments a full pass would.
#[test]
fn shortlisted_pass_equals_full_pass_when_no_misses() {
    let dataset = generate(&DatgenConfig::new(250, 25, 30).seed(4));
    let labels = dataset.labels().unwrap();
    let assignments: Vec<ClusterId> = labels.iter().map(|&l| ClusterId(l)).collect();
    let mut modes = initial_modes(&dataset, 25, InitMethod::RandomItems, 4);
    modes.recompute(&dataset, &assignments);
    let index = LshIndexBuilder::new(Banding::new(64, 1)).seed(4).build(&dataset, &assignments);
    let model = KModesModel::new(&dataset, modes);
    let mut scratch = index.make_scratch(25);

    for item in 0..dataset.n_items() as u32 {
        let (full_best, full_d) = model.best_full(item);
        index.shortlist(item, &mut scratch, false);
        if scratch.clusters.contains(&full_best) {
            let (short_best, short_d) = model.best_among(item, &scratch.clusters).unwrap();
            assert_eq!(full_best, short_best, "item {item}");
            assert_eq!(full_d, short_d, "item {item}");
        }
    }
}

/// Divergence, where it exists, is bounded: the shortlisted choice can never
/// have *smaller* distance than the full-search optimum, and when it misses,
/// the item keeps a cluster from its shortlist (never an arbitrary one).
#[test]
fn shortlisted_choice_is_never_better_than_full_search() {
    let dataset = generate(&DatgenConfig::new(300, 40, 25).seed(6));
    let good: Vec<ClusterId> =
        dataset.labels().unwrap().iter().map(|&l| ClusterId(l)).collect();
    let mut modes = initial_modes(&dataset, 40, InitMethod::RandomItems, 6);
    modes.recompute(&dataset, &good);
    // Scrambled cluster references + strict banding: the true best cluster
    // can only reach the shortlist via a genuine cross-item collision, so
    // misses are guaranteed to occur and the miss path is exercised.
    let scrambled: Vec<ClusterId> =
        (0..dataset.n_items()).map(|i| ClusterId(((i * 7 + 3) % 40) as u32)).collect();
    let index = LshIndexBuilder::new(Banding::new(2, 6)).seed(6).build(&dataset, &scrambled);
    let model = KModesModel::new(&dataset, modes);
    let mut scratch = index.make_scratch(40);
    let mut misses = 0;
    for item in 0..dataset.n_items() as u32 {
        let (_, full_d) = model.best_full(item);
        index.shortlist(item, &mut scratch, false);
        let (short_c, short_d) = model.best_among(item, &scratch.clusters).unwrap();
        assert!(short_d >= full_d, "shortlist beat exhaustive search");
        assert!(scratch.clusters.contains(&short_c));
        if short_d > full_d {
            misses += 1;
        }
    }
    // Sanity: this banding is strict enough that some misses occurred,
    // i.e. the assertion above was actually exercised on the miss path.
    assert!(misses > 0, "test banding unexpectedly saturated");
}
