//! `cluster` — command-line MH-K-Modes over CSV files.
//!
//! The adoption path for a downstream user: put categorical data in a CSV
//! (header row; optional `__label` column for purity reporting), pick `k`,
//! and go.
//!
//! ```text
//! cluster --input data.csv --k 1000 [options]
//!
//!   --input FILE      input CSV (header; optional trailing __label column)
//!   --output FILE     write per-item cluster ids as CSV (default: stdout summary only)
//!   --k N             number of clusters (required)
//!   --bands B         LSH bands (default 20; 0 = run plain K-Modes)
//!   --rows R          LSH rows per band (default 5)
//!   --max-iter N      iteration cap (default 100)
//!   --seed N          random seed (default 0)
//!   --threads N       assignment threads (default 1 = paper-faithful)
//!   --quiet           suppress per-iteration progress
//! ```

use lshclust_categorical::io::read_csv;
use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
use lshclust_kmodes::{KModes, KModesConfig};
use lshclust_kmodes::stats::RunSummary;
use lshclust_metrics::{normalized_mutual_information, purity};
use lshclust_minhash::Banding;
use std::io::Write;
use std::process::ExitCode;

struct Args {
    input: String,
    output: Option<String>,
    k: usize,
    bands: u32,
    rows: u32,
    max_iter: usize,
    seed: u64,
    threads: usize,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut output = None;
    let mut k = None;
    let mut bands = 20u32;
    let mut rows = 5u32;
    let mut max_iter = 100usize;
    let mut seed = 0u64;
    let mut threads = 1usize;
    let mut quiet = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--input" => input = Some(value("--input")?),
            "--output" => output = Some(value("--output")?),
            "--k" => k = Some(value("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--bands" => bands = value("--bands")?.parse().map_err(|e| format!("--bands: {e}"))?,
            "--rows" => rows = value("--rows")?.parse().map_err(|e| format!("--rows: {e}"))?,
            "--max-iter" => {
                max_iter = value("--max-iter")?.parse().map_err(|e| format!("--max-iter: {e}"))?
            }
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--threads" => {
                threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--quiet" => quiet = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args {
        input: input.ok_or("--input is required")?,
        output,
        k: k.ok_or("--k is required")?,
        bands,
        rows,
        max_iter,
        seed,
        threads: threads.max(1),
        quiet,
    })
}

fn report(summary: &RunSummary, quiet: bool) {
    if !quiet {
        for s in &summary.iterations {
            eprintln!(
                "iter {:>3}: {:>8.3}s  {:>8} moves  avg shortlist {:>10.2}  cost {}",
                s.iteration,
                s.duration.as_secs_f64(),
                s.moves,
                s.avg_candidates,
                s.cost
            );
        }
    }
    eprintln!(
        "{} iterations, converged: {}, setup {:.3}s, total {:.3}s",
        summary.n_iterations(),
        summary.converged,
        summary.setup.as_secs_f64(),
        summary.total_time().as_secs_f64()
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nrun with: cluster --input data.csv --k N [options]");
            return ExitCode::FAILURE;
        }
    };

    let file = match std::fs::File::open(&args.input) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot open {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let dataset = match read_csv(std::io::BufReader::new(file)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    if args.k == 0 || args.k > dataset.n_items() {
        eprintln!("error: --k must be in 1..={}", dataset.n_items());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{}: {} items x {} attrs{}",
        args.input,
        dataset.n_items(),
        dataset.n_attrs(),
        if dataset.labels().is_some() { " (labelled)" } else { "" }
    );

    let assignments: Vec<u32> = if args.bands == 0 {
        eprintln!("running K-Modes (full search, k={}) ...", args.k);
        let result = KModes::new(
            KModesConfig::new(args.k).seed(args.seed).max_iterations(args.max_iter),
        )
        .fit(&dataset);
        report(&result.summary, args.quiet);
        result.assignments.iter().map(|c| c.0).collect()
    } else {
        let banding = Banding::new(args.bands, args.rows);
        eprintln!(
            "running MH-K-Modes ({banding}, threshold similarity {:.3}, k={}) ...",
            banding.threshold(),
            args.k
        );
        let result = MhKModes::new(
            MhKModesConfig::new(args.k, banding)
                .seed(args.seed)
                .max_iterations(args.max_iter)
                .threads(args.threads),
        )
        .fit(&dataset);
        report(&result.summary, args.quiet);
        result.assignments.iter().map(|c| c.0).collect()
    };

    if let Some(labels) = dataset.labels() {
        eprintln!(
            "purity {:.4}  nmi {:.4}  (against the __label column)",
            purity(&assignments, labels),
            normalized_mutual_information(&assignments, labels)
        );
    }

    if let Some(path) = &args.output {
        let mut out = match std::fs::File::create(path) {
            Ok(f) => std::io::BufWriter::new(f),
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let _ = writeln!(out, "item,cluster");
        for (i, c) in assignments.iter().enumerate() {
            let _ = writeln!(out, "{i},{c}");
        }
        eprintln!("wrote {} assignments to {path}", assignments.len());
    }
    ExitCode::SUCCESS
}
