//! p-stable LSH for Euclidean distance (Datar–Immorlica–Indyk–Mirrokni
//! E2LSH scheme).
//!
//! Completes the numeric LSH toolbox next to [`crate::simhash`]: SimHash is
//! angle-sensitive (cosine), this family is *magnitude*-sensitive
//! (ℓ₂ distance). Each hash is `h(v) = ⌊(a·v + b) / w⌋` with `a` a standard
//! Gaussian vector (2-stable) and `b ~ U[0, w)`; nearby vectors land in the
//! same width-`w` slot with probability decreasing in `‖u − v‖₂ / w`. Hashes
//! are grouped into the usual `b` bands × `r` rows for candidate generation,
//! so the whole `1 − (1 − p^r)^b` analysis of [`crate::probability`] carries
//! over with `p = P[slot collision]`.

use crate::hashfn::mix64;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A family of `n` p-stable hash functions over `dim`-dimensional vectors.
#[derive(Clone, Debug)]
pub struct PStableHash {
    /// `n × dim` Gaussian projection vectors, row-major.
    projections: Vec<f64>,
    /// `n` offsets in `[0, w)`.
    offsets: Vec<f64>,
    /// Slot width.
    width: f64,
    dim: usize,
}

/// Standard-normal sampling via Box–Muller (keeps the dependency list to
/// plain `rand`; see DESIGN.md §3).
fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random_range(0.0..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

impl PStableHash {
    /// Creates `n` hash functions with slot width `w`.
    ///
    /// Pick `w` around the distance scale you want to treat as "near":
    /// `P[collision]` at distance `d` is ≈ 1 for `d ≪ w` and decays like
    /// `w/d` beyond it.
    pub fn new(n: usize, dim: usize, width: f64, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(width > 0.0 && width.is_finite(), "width must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0070_7374_6162_6c65); // "pstable"
        let projections = (0..n * dim).map(|_| gaussian(&mut rng)).collect();
        let offsets = (0..n).map(|_| rng.random_range(0.0..width)).collect();
        Self {
            projections,
            offsets,
            width,
            dim,
        }
    }

    /// Number of hash functions.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The slot width `w`.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Evaluates hash `i` on `v`: the integer slot index.
    pub fn slot(&self, i: usize, v: &[f64]) -> i64 {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let proj = &self.projections[i * self.dim..(i + 1) * self.dim];
        let dot: f64 = proj.iter().zip(v).map(|(a, x)| a * x).sum();
        ((dot + self.offsets[i]) / self.width).floor() as i64
    }

    /// Computes the full slot signature of `v`.
    pub fn signature(&self, v: &[f64]) -> Vec<i64> {
        (0..self.len()).map(|i| self.slot(i, v)).collect()
    }

    /// Folds a slot signature into `bands` 64-bit band keys of `rows` slots
    /// each (requires `bands × rows ≤ len()`).
    pub fn band_keys(&self, signature: &[i64], bands: u32, rows: u32) -> Vec<u64> {
        let needed = bands as usize * rows as usize;
        assert!(
            needed <= signature.len(),
            "banding needs {needed} hashes, have {}",
            signature.len()
        );
        (0..bands)
            .map(|band| {
                let mut acc = mix64(u64::from(band) ^ 0xe2e2);
                for row in 0..rows {
                    let slot = signature[(band * rows + row) as usize];
                    acc = mix64(acc ^ (slot as u64));
                }
                acc
            })
            .collect()
    }

    /// Analytic slot-collision probability for two vectors at ℓ₂ distance
    /// `d` (Datar et al., Eq. for the Gaussian case):
    ///
    /// `p(d) = 1 − 2Φ(−w/d) − (2d / (√(2π) w)) (1 − e^{−w²/(2d²)})`
    pub fn collision_probability(&self, d: f64) -> f64 {
        assert!(d >= 0.0);
        if d == 0.0 {
            return 1.0;
        }
        let c = self.width / d;
        let phi_neg = 0.5 * erfc(c / std::f64::consts::SQRT_2);
        1.0 - 2.0 * phi_neg
            - (2.0 / (std::f64::consts::TAU.sqrt() * c)) * (1.0 - (-c * c / 2.0).exp())
    }
}

/// Complementary error function (Abramowitz–Stegun 7.1.26 rational
/// approximation, |error| ≤ 1.5e-7 — ample for parameter planning).
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let result = poly * (-x * x).exp();
    if sign_negative {
        2.0 - result
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_share_all_slots() {
        let h = PStableHash::new(32, 4, 1.0, 1);
        let v = vec![0.3, -1.2, 4.5, 0.0];
        assert_eq!(h.signature(&v), h.signature(&v));
    }

    #[test]
    fn near_vectors_share_most_slots() {
        let h = PStableHash::new(256, 4, 4.0, 2);
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![1.05, 2.0, 3.0, 3.95]; // distance ≈ 0.07 « w
        let sa = h.signature(&a);
        let sb = h.signature(&b);
        let agree = sa.iter().zip(&sb).filter(|(x, y)| x == y).count();
        assert!(agree > 240, "only {agree}/256 slots agree");
    }

    #[test]
    fn far_vectors_rarely_share_slots() {
        let h = PStableHash::new(256, 4, 0.5, 3);
        let a = vec![0.0; 4];
        let b = vec![10.0, -10.0, 10.0, -10.0]; // distance 20 » w
        let sa = h.signature(&a);
        let sb = h.signature(&b);
        let agree = sa.iter().zip(&sb).filter(|(x, y)| x == y).count();
        assert!(agree < 30, "{agree}/256 slots agree for far vectors");
    }

    #[test]
    fn collision_rate_tracks_analytic_probability() {
        let h = PStableHash::new(2048, 3, 2.0, 4);
        let a = vec![0.0, 0.0, 0.0];
        let b = vec![2.0, 0.0, 0.0]; // d = w
        let sa = h.signature(&a);
        let sb = h.signature(&b);
        let measured = sa.iter().zip(&sb).filter(|(x, y)| x == y).count() as f64 / 2048.0;
        let analytic = h.collision_probability(2.0);
        assert!(
            (measured - analytic).abs() < 0.05,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn collision_probability_monotone_in_distance() {
        let h = PStableHash::new(1, 2, 1.0, 5);
        let mut last = 1.0;
        for d in [0.0, 0.1, 0.5, 1.0, 2.0, 10.0] {
            let p = h.collision_probability(d);
            assert!(p <= last + 1e-12, "p({d}) = {p} not monotone");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn wider_slots_collide_more() {
        let narrow = PStableHash::new(1, 2, 0.5, 6);
        let wide = PStableHash::new(1, 2, 5.0, 6);
        assert!(wide.collision_probability(1.0) > narrow.collision_probability(1.0));
    }

    #[test]
    fn band_keys_deterministic_and_shaped() {
        let h = PStableHash::new(12, 3, 1.0, 7);
        let sig = h.signature(&[1.0, 2.0, 3.0]);
        let keys = h.band_keys(&sig, 4, 3);
        assert_eq!(keys.len(), 4);
        assert_eq!(keys, h.band_keys(&sig, 4, 3));
    }

    #[test]
    #[should_panic(expected = "banding needs")]
    fn band_keys_validate_length() {
        let h = PStableHash::new(4, 2, 1.0, 8);
        let sig = h.signature(&[0.0, 0.0]);
        let _ = h.band_keys(&sig, 4, 3);
    }

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1, erfc(1) ≈ 0.1573, erfc(-1) ≈ 1.8427.
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-5);
        assert!(erfc(5.0) < 1e-10);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn translation_changes_slots_scaling_width_compensates() {
        // Doubling all coordinates at doubled width yields the same relative
        // geometry: collision probability at distance d under width w equals
        // that at 2d under 2w.
        let h1 = PStableHash::new(1, 2, 1.0, 10);
        let h2 = PStableHash::new(1, 2, 2.0, 10);
        let p1 = h1.collision_probability(0.7);
        let p2 = h2.collision_probability(1.4);
        assert!((p1 - p2).abs() < 1e-12);
    }
}
