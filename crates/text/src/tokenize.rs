//! Tokenisation: lowercase, strip non-alphanumerics, split on whitespace.
//!
//! Deliberately simple — the paper gives no tokenizer details beyond "using
//! the words of each question", and the synthetic corpus emits clean tokens;
//! real text still comes out reasonably (e.g. `"Does zoologist work?"` →
//! `["does", "zoologist", "work"]`).

/// Splits `text` into lowercase alphanumeric tokens.
///
/// A token is a maximal run of alphanumeric characters; everything else is a
/// separator. Tokens keep intra-run digits (`"42nd"` survives) but lose
/// punctuation (`"do.Does"` → `["do", "does"]`, mirroring the paper's real
/// example text).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(tokenize("hello world"), vec!["hello", "world"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("HeLLo"), vec!["hello"]);
    }

    #[test]
    fn strips_punctuation() {
        assert_eq!(
            tokenize("im interested, in being a zoologist!"),
            vec!["im", "interested", "in", "being", "a", "zoologist"]
        );
    }

    #[test]
    fn paper_example_fragment() {
        // From the paper's real Yahoo! Answers question: missing space after
        // the period still separates tokens.
        assert_eq!(
            tokenize("really do.Does zoologist"),
            vec!["really", "do", "does", "zoologist"]
        );
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(tokenize("42nd question q2"), vec!["42nd", "question", "q2"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!... --").is_empty());
    }

    #[test]
    fn unicode_letters_survive() {
        assert_eq!(tokenize("Café au lait"), vec!["café", "au", "lait"]);
    }
}
