//! Cluster modes: the centroid representation of K-Modes.
//!
//! A mode is the vector of per-attribute most frequent categories among a
//! cluster's members (paper Eq. 3: the mode minimises the summed matching
//! dissimilarity `D(X, Q)` iff every component is a most-frequent category).
//! Ties break towards the smallest [`ValueId`] and empty clusters keep their
//! previous mode, per the workspace determinism policy (DESIGN.md §7).

use lshclust_categorical::{ClusterId, Dataset, ValueId};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// A `k × n_attrs` matrix of cluster modes, row-major like [`Dataset`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Modes {
    k: usize,
    n_attrs: usize,
    values: Vec<ValueId>,
}

impl Modes {
    /// Creates modes from a flat buffer. Panics on shape mismatch.
    pub fn from_parts(k: usize, n_attrs: usize, values: Vec<ValueId>) -> Self {
        assert_eq!(values.len(), k * n_attrs, "mode buffer shape mismatch");
        Self { k, n_attrs, values }
    }

    /// Copies `k` dataset rows (by item index) as the initial modes.
    pub fn from_items(dataset: &Dataset, items: &[u32]) -> Self {
        let n_attrs = dataset.n_attrs();
        let mut values = Vec::with_capacity(items.len() * n_attrs);
        for &item in items {
            values.extend_from_slice(dataset.row(item as usize));
        }
        Self {
            k: items.len(),
            n_attrs,
            values,
        }
    }

    /// Number of clusters `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Attributes per mode.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// Mode of cluster `c` as a value slice.
    #[inline]
    pub fn mode(&self, c: usize) -> &[ValueId] {
        let s = c * self.n_attrs;
        &self.values[s..s + self.n_attrs]
    }

    /// Mode addressed by [`ClusterId`].
    #[inline]
    pub fn of(&self, c: ClusterId) -> &[ValueId] {
        self.mode(c.idx())
    }

    /// The flat `k × n_attrs` value buffer, row-major (mode serialization
    /// and signature generation read this directly).
    #[inline]
    pub fn values(&self) -> &[ValueId] {
        &self.values
    }

    /// Overwrites the mode of cluster `c` in place (used by the online and
    /// mini-batch update rules).
    pub fn set_mode(&mut self, c: ClusterId, mode: &[ValueId]) {
        assert_eq!(mode.len(), self.n_attrs, "mode arity mismatch");
        let s = c.idx() * self.n_attrs;
        self.values[s..s + self.n_attrs].copy_from_slice(mode);
    }

    /// Recomputes every mode from the current `assignments` (step 3 of the
    /// paper's algorithm). Clusters with no members keep their previous mode.
    pub fn recompute(&mut self, dataset: &Dataset, assignments: &[ClusterId]) {
        assert_eq!(assignments.len(), dataset.n_items());
        let groups = group_by_cluster(assignments, self.k);
        let mut counts: Vec<(ValueId, u32)> = Vec::new();
        let mut row: Vec<ValueId> = Vec::with_capacity(self.n_attrs);
        for c in 0..self.k {
            let members = groups.members(c);
            if members.is_empty() {
                continue; // keep previous mode
            }
            Self::mode_of_members(dataset, members, &mut counts, &mut row);
            self.values[c * self.n_attrs..(c + 1) * self.n_attrs].copy_from_slice(&row);
        }
    }

    /// The per-cluster kernel of [`Self::recompute`]: computes the
    /// per-attribute majority values of one non-empty member group into
    /// `out` (cleared first), with the workspace tie-break (ties towards the
    /// smallest [`ValueId`]). `counts` is reusable scratch.
    ///
    /// Exposed so the parallel centroid update can recompute clusters
    /// concurrently while staying bit-identical to the serial path.
    ///
    /// The paper's cluster populations are tiny (`n/k ≈ 4.5–12.5`), so the
    /// per-attribute frequency count is a linear scan over a small member
    /// group rather than a hash map — measured faster and allocation-free.
    pub fn mode_of_members(
        dataset: &Dataset,
        members: &[u32],
        counts: &mut Vec<(ValueId, u32)>,
        out: &mut Vec<ValueId>,
    ) {
        assert!(!members.is_empty(), "mode of an empty member group");
        out.clear();
        for a in 0..dataset.n_attrs() {
            counts.clear();
            for &item in members {
                let v = dataset.row(item as usize)[a];
                match counts.iter_mut().find(|(val, _)| *val == v) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((v, 1)),
                }
            }
            // Most frequent value; ties towards the smallest ValueId.
            let best = counts
                .iter()
                .copied()
                .max_by(|(va, na), (vb, nb)| na.cmp(nb).then(vb.cmp(va)))
                .expect("non-empty member group");
            out.push(best.0);
        }
    }
}

// `{"k": 2, "n_attrs": 3, "values": [0, 1, …]}` — the shape fields are
// explicit so deserialization can validate instead of panicking.
impl Serialize for Modes {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("k".to_owned(), self.k.to_value()),
            ("n_attrs".to_owned(), self.n_attrs.to_value()),
            ("values".to_owned(), self.values.to_value()),
        ])
    }
}

impl Deserialize for Modes {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| SerdeError::expected("object", "Modes"))?;
        let k: usize = serde::field(entries, "k", "Modes")?;
        let n_attrs: usize = serde::field(entries, "n_attrs", "Modes")?;
        let values: Vec<ValueId> = serde::field(entries, "values", "Modes")?;
        if values.len() != k * n_attrs {
            return Err(SerdeError(format!(
                "Modes buffer holds {} values, expected k×n_attrs = {}",
                values.len(),
                k * n_attrs
            )));
        }
        Ok(Modes::from_parts(k, n_attrs, values))
    }
}

/// Items grouped by cluster in a CSR layout (one counting sort).
pub struct ClusterGroups {
    /// Item ids ordered by cluster.
    items: Vec<u32>,
    /// `k + 1` offsets into `items`.
    offsets: Vec<u32>,
}

impl ClusterGroups {
    /// Member item ids of cluster `c`.
    #[inline]
    pub fn members(&self, c: usize) -> &[u32] {
        let lo = self.offsets[c] as usize;
        let hi = self.offsets[c + 1] as usize;
        &self.items[lo..hi]
    }

    /// Number of members of cluster `c`.
    #[inline]
    pub fn len(&self, c: usize) -> usize {
        (self.offsets[c + 1] - self.offsets[c]) as usize
    }

    /// Whether cluster `c` has no members.
    pub fn is_empty(&self, c: usize) -> bool {
        self.len(c) == 0
    }

    /// Number of clusters with at least one member.
    pub fn n_nonempty(&self) -> usize {
        (0..self.offsets.len() - 1)
            .filter(|&c| !self.is_empty(c))
            .count()
    }
}

/// Counting sort of item ids by cluster assignment.
pub fn group_by_cluster(assignments: &[ClusterId], k: usize) -> ClusterGroups {
    let mut counts = vec![0u32; k + 1];
    for &c in assignments {
        debug_assert!(c.idx() < k, "assignment {c} out of range k={k}");
        counts[c.idx() + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut items = vec![0u32; assignments.len()];
    for (item, &c) in assignments.iter().enumerate() {
        items[cursor[c.idx()] as usize] = item as u32;
        cursor[c.idx()] += 1;
    }
    ClusterGroups { items, offsets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    fn dataset(rows: &[&[&str]]) -> Dataset {
        let n = rows[0].len();
        let mut b = DatasetBuilder::anonymous(n);
        for r in rows {
            b.push_str_row(r, None).unwrap();
        }
        b.finish()
    }

    fn assign(xs: &[u32]) -> Vec<ClusterId> {
        xs.iter().map(|&x| ClusterId(x)).collect()
    }

    #[test]
    fn grouping_partitions_all_items() {
        let g = group_by_cluster(&assign(&[1, 0, 1, 2, 1]), 3);
        assert_eq!(g.members(0), &[1]);
        assert_eq!(g.members(1), &[0, 2, 4]);
        assert_eq!(g.members(2), &[3]);
        assert_eq!(g.n_nonempty(), 3);
    }

    #[test]
    fn grouping_handles_empty_clusters() {
        let g = group_by_cluster(&assign(&[0, 0]), 4);
        assert_eq!(g.len(0), 2);
        assert!(g.is_empty(1) && g.is_empty(2) && g.is_empty(3));
        assert_eq!(g.n_nonempty(), 1);
    }

    #[test]
    fn grouping_empty_input() {
        let g = group_by_cluster(&[], 2);
        assert!(g.is_empty(0) && g.is_empty(1));
    }

    #[test]
    fn mode_is_per_attribute_majority() {
        let ds = dataset(&[&["red", "square"], &["red", "circle"], &["blue", "circle"]]);
        let mut modes = Modes::from_items(&ds, &[0]);
        modes.recompute(&ds, &assign(&[0, 0, 0]));
        // Majority colour "red", majority shape "circle".
        assert_eq!(modes.mode(0), &[ds.row(0)[0], ds.row(1)[1]]);
    }

    #[test]
    fn mode_tie_breaks_to_smallest_value_id() {
        let ds = dataset(&[&["a"], &["b"]]);
        let mut modes = Modes::from_items(&ds, &[1]);
        modes.recompute(&ds, &assign(&[0, 0]));
        // "a" interned first → ValueId(0) wins the 1–1 tie.
        assert_eq!(modes.mode(0)[0], ds.row(0)[0]);
    }

    #[test]
    fn empty_cluster_keeps_previous_mode() {
        let ds = dataset(&[&["a"], &["b"]]);
        let mut modes = Modes::from_items(&ds, &[0, 1]);
        let before = modes.mode(1).to_vec();
        // Everything to cluster 0: cluster 1 becomes empty.
        modes.recompute(&ds, &assign(&[0, 0]));
        assert_eq!(modes.mode(1), before.as_slice());
    }

    #[test]
    fn recompute_is_idempotent_at_fixpoint() {
        let ds = dataset(&[&["x", "p"], &["x", "p"], &["y", "q"]]);
        let mut modes = Modes::from_items(&ds, &[0, 2]);
        let a = assign(&[0, 0, 1]);
        modes.recompute(&ds, &a);
        let snapshot = modes.clone();
        modes.recompute(&ds, &a);
        assert_eq!(modes, snapshot);
    }

    #[test]
    fn from_items_copies_rows() {
        let ds = dataset(&[&["a", "b"], &["c", "d"]]);
        let modes = Modes::from_items(&ds, &[1, 0]);
        assert_eq!(modes.k(), 2);
        assert_eq!(modes.mode(0), ds.row(1));
        assert_eq!(modes.mode(1), ds.row(0));
        assert_eq!(modes.of(ClusterId(0)), ds.row(1));
    }

    #[test]
    fn mode_minimises_summed_distance() {
        // Property from Eq. 3: the recomputed mode's summed distance to the
        // members is ≤ that of any member itself.
        use lshclust_categorical::dissimilarity::matching;
        let ds = dataset(&[
            &["a", "p", "k"],
            &["a", "q", "k"],
            &["b", "p", "k"],
            &["a", "p", "l"],
        ]);
        let mut modes = Modes::from_items(&ds, &[0]);
        modes.recompute(&ds, &assign(&[0, 0, 0, 0]));
        let mode_cost: u32 = (0..4).map(|i| matching(modes.mode(0), ds.row(i))).sum();
        for candidate in 0..4 {
            let cand_cost: u32 = (0..4).map(|i| matching(ds.row(candidate), ds.row(i))).sum();
            assert!(mode_cost <= cand_cost);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_parts_validates() {
        let _ = Modes::from_parts(2, 3, vec![ValueId(0); 5]);
    }
}
