//! A miniature of the paper's Fig. 6 scaling study: how total clustering
//! time grows with items, clusters, and attributes — exact baseline vs
//! MH-K-Modes (20b5r) at laptop-friendly sizes, both driven by the same
//! [`ClusterSpec`] at the same seed (⇒ identical initial modes).
//!
//! ```text
//! cargo run --release -p lshclust --example scaling_study [-- --threads N] [--smoke]
//!
//!   --threads N   assignment threads for the MH runs (default 1 = the
//!                 paper's serial pass; > 1 = Jacobi parallel engine)
//!   --smoke       one small shape only (CI-sized)
//! ```

use lshclust::{ClusterSpec, Clusterer, Lsh};
use lshclust_datagen::datgen::{generate, DatgenConfig};

fn run(n_items: usize, n_clusters: usize, n_attrs: usize, threads: usize) -> (f64, f64) {
    let dataset = generate(&DatgenConfig::new(n_items, n_clusters, n_attrs).seed(42));
    let base_spec = ClusterSpec::new(n_clusters).seed(42).max_iterations(25);
    let mh_spec = base_spec
        .clone()
        .lsh(Lsh::MinHash { bands: 20, rows: 5 })
        .threads(threads);
    let baseline = Clusterer::new(base_spec).fit(&dataset).unwrap();
    let mh = Clusterer::new(mh_spec).fit(&dataset).unwrap();
    (
        baseline.summary.total_time().as_secs_f64(),
        mh.summary.total_time().as_secs_f64(),
    )
}

fn main() {
    let mut threads = 1usize;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number")
            }
            "--smoke" => smoke = true,
            other => panic!("unknown argument {other}"),
        }
    }
    println!("MH assignment threads: {threads}");

    if smoke {
        // CI-sized sanity run: exercises the full baseline-vs-MH pipeline
        // (including the parallel engine when --threads > 1) in seconds.
        let (base, mh) = run(1_500, 150, 30, threads);
        println!(
            "smoke [n=1500 k=150 m=30]  K-Modes {base:.2}s  MH 20b5r {mh:.2}s  speedup {:.2}x",
            base / mh
        );
        return;
    }

    println!("\n(a) scaling items  [k=1000, m=100]");
    println!(
        "{:>8}  {:>12}  {:>14}  {:>8}",
        "items", "K-Modes (s)", "MH 20b5r (s)", "speedup"
    );
    for n in [2_250usize, 4_500, 9_000] {
        let (base, mh) = run(n, 1_000, 100, threads);
        println!("{n:>8}  {base:>12.2}  {mh:>14.2}  {:>8.2}x", base / mh);
    }

    println!("\n(b) scaling clusters  [n=9000, m=100]");
    println!(
        "{:>8}  {:>12}  {:>14}  {:>8}",
        "clusters", "K-Modes (s)", "MH 20b5r (s)", "speedup"
    );
    for k in [500usize, 1_000, 2_000] {
        let (base, mh) = run(9_000, k, 100, threads);
        println!("{k:>8}  {base:>12.2}  {mh:>14.2}  {:>8.2}x", base / mh);
    }

    println!("\n(c) scaling attributes  [n=4500, k=1000]");
    println!(
        "{:>8}  {:>12}  {:>14}  {:>8}",
        "attrs", "K-Modes (s)", "MH 20b5r (s)", "speedup"
    );
    for m in [100usize, 200, 400] {
        let (base, mh) = run(4_500, 1_000, m, threads);
        println!("{m:>8}  {base:>12.2}  {mh:>14.2}  {:>8.2}x", base / mh);
    }

    println!("\nexpected shape (paper Fig. 6): MH-K-Modes grows more slowly than");
    println!("K-Modes on every axis; the attribute axis shows the largest gap");
    println!("because each avoided comparison is itself more expensive.");
}
