//! Workspace-local stand-in for `serde_json`.
//!
//! Renders and parses JSON over the `serde` shim's [`Value`] tree, with the
//! familiar entry points: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], [`from_value`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
pub use serde::{Error, Number, Value};
use std::fmt::Write as _;

/// Serializes `t` into a [`Value`] tree.
pub fn to_value<T: Serialize>(t: &T) -> Value {
    t.to_value()
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

/// Serializes `t` as compact JSON.
pub fn to_string<T: Serialize>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &t.to_value(), None, 0);
    Ok(out)
}

/// Serializes `t` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &t.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and reconstructs a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parses JSON text into a [`Value`] tree without deserializing further.
///
/// Callers that need to inspect or hold on to the tree (rather than go
/// straight to a concrete type) use this to avoid re-serializing: the
/// returned `Value` is owned, so no clone of the input survives.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

// --- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::PosInt(n)) => {
            let _ = write!(out, "{n}");
        }
        Value::Number(Number::NegInt(n)) => {
            let _ = write!(out, "{n}");
        }
        Value::Number(Number::Float(f)) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest representation that parses
                // back to the same bits, so floats round-trip exactly. Append
                // a `.0` marker to integral values so they re-parse as Float.
                let start = out.len();
                let _ = write!(out, "{f}");
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // serde_json convention for non-finite
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("invalid escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = text.chars().next().expect("non-empty by peek");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        let number = if is_float {
            Number::Float(
                text.parse()
                    .map_err(|_| Error(format!("bad number `{text}`")))?,
            )
        } else if text.starts_with('-') {
            Number::NegInt(
                text.parse()
                    .map_err(|_| Error(format!("bad number `{text}`")))?,
            )
        } else {
            Number::PosInt(
                text.parse()
                    .map_err(|_| Error(format!("bad number `{text}`")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Object(vec![
            ("k".into(), Value::Number(Number::PosInt(1000))),
            ("gamma".into(), Value::Number(Number::Float(0.5))),
            ("name".into(), Value::String("a \"b\"\n".into())),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        let text = to_string(&{
            struct W(Value);
            impl serde::Serialize for W {
                fn to_value(&self) -> Value {
                    self.0.clone()
                }
            }
            W(v.clone())
        })
        .unwrap();
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.value().unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let text = r#" { "a" : [ 1 , -2 , 3.5e1 ] , "b" : { "c" : "A" } } "#;
        let parsed: Value = {
            let mut p = Parser {
                bytes: text.trim().as_bytes(),
                pos: 0,
            };
            p.value().unwrap()
        };
        assert_eq!(
            parsed.get("a").unwrap().as_array().unwrap()[1].as_i64(),
            Some(-2)
        );
        assert_eq!(
            parsed.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(35.0)
        );
        assert_eq!(
            parsed.get("b").unwrap().get("c").unwrap().as_str(),
            Some("A")
        );
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = u64::MAX - 3;
        let text = to_string(&seed).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn floats_survive_exactly() {
        for f in [0.1f64, -1.5, 1e300, std::f64::consts::PI, 2.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = vec![1u32, 2, 3];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<bool>("true x").is_err());
    }
}
