//! The unified entry point: [`Clusterer`] dispatches a [`ClusterSpec`] over
//! the input modality and lowers it onto the per-algorithm internals.
//!
//! Lowering is *exact*: at equal seeds, a facade run is byte-identical to
//! the corresponding legacy entry point (`MhKModes::fit`, `KModes::fit`,
//! `mh_kmeans`, `mh_kprototypes`, `kmeans`, `kprototypes`) — pinned by
//! `tests/equivalence.rs`.

use crate::run::{Centroids, ClusterRun};
use crate::spec::{categorical_init, numeric_init, ClusterSpec, Lsh, SpecError};
use lshclust_categorical::{ClusterId, Dataset, Schema};
use lshclust_core::mhkmeans::{mh_kmeans, MhKMeansConfig};
use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
use lshclust_core::mhkprototypes::{mh_kprototypes, MhKPrototypesConfig};
use lshclust_core::streaming::{StreamingConfig, StreamingMhKModes};
use lshclust_kmodes::kmeans::{kmeans, KMeansConfig, NumericDataset};
use lshclust_kmodes::kprototypes::{kprototypes, suggest_gamma, KPrototypesConfig, MixedDataset};
use lshclust_kmodes::stats::{IterationStats, RunSummary};
use lshclust_kmodes::{KModes, KModesConfig, UpdateRule};
use lshclust_minhash::Banding;
use std::time::Duration;

/// Runs a [`ClusterSpec`] against any supported input modality.
#[derive(Clone, Debug)]
pub struct Clusterer {
    spec: ClusterSpec,
}

impl Clusterer {
    /// Wraps a spec.
    pub fn new(spec: ClusterSpec) -> Self {
        Self { spec }
    }

    /// The spec in use.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Clusters `input` — a categorical [`Dataset`], a [`NumericDataset`],
    /// or a [`MixedDataset`] — according to the spec.
    pub fn fit<I: Input>(&self, input: I) -> Result<ClusterRun, SpecError> {
        input.fit_spec(&self.spec)
    }

    /// Builds the streaming inserter for items under `schema`, configured
    /// from the spec's [`Lsh::MinHash`] scheme, seed, and
    /// [`crate::StreamOptions`]. `k` is ignored: the stream discovers its
    /// cluster count.
    pub fn streaming(&self, schema: Schema) -> Result<StreamingMhKModes, SpecError> {
        let spec = &self.spec;
        let Lsh::MinHash { bands, rows } = spec.lsh else {
            return Err(SpecError::UnsupportedLsh {
                modality: "streaming",
                lsh: spec.lsh.name(),
            });
        };
        let mut config = StreamingConfig::new(Banding::new(bands, rows), schema.n_attrs());
        config.seed = spec.seed;
        if let Some(threshold) = spec.stream.distance_threshold {
            config.distance_threshold = threshold;
        }
        config.max_clusters = spec.stream.max_clusters;
        Ok(StreamingMhKModes::new(config, schema))
    }
}

/// An input modality the [`Clusterer`] can dispatch over. Implemented for
/// `&Dataset` (categorical), `&NumericDataset`, and `&MixedDataset`.
pub trait Input {
    /// Runs `spec` on this input.
    fn fit_spec(self, spec: &ClusterSpec) -> Result<ClusterRun, SpecError>;
}

fn check_k(k: usize, n_items: usize) -> Result<(), SpecError> {
    if k == 0 || k > n_items {
        return Err(SpecError::InvalidK { k, n_items });
    }
    Ok(())
}

impl Input for &Dataset {
    fn fit_spec(self, spec: &ClusterSpec) -> Result<ClusterRun, SpecError> {
        check_k(spec.k, self.n_items())?;
        let init = categorical_init(spec.init, "categorical")?;
        match spec.lsh {
            Lsh::None => {
                // The exact baseline honours the iteration cap; its loop has
                // the no-move / cost-stagnation criteria built in.
                let config = KModesConfig {
                    k: spec.k,
                    max_iterations: spec.stop.max_iterations,
                    init,
                    seed: spec.seed,
                    update: UpdateRule::Batch,
                };
                let result = KModes::new(config).fit(self);
                Ok(ClusterRun {
                    assignments: result.assignments,
                    centroids: Centroids::Modes(result.modes),
                    summary: result.summary,
                    index_stats: None,
                })
            }
            Lsh::MinHash { bands, rows } => {
                let config = MhKModesConfig {
                    k: spec.k,
                    banding: Banding::new(bands, rows),
                    stop: spec.stop,
                    init,
                    seed: spec.seed,
                    query_mode: spec.query_mode.into(),
                    include_self: spec.include_self,
                    threads: spec.threads,
                };
                let result = MhKModes::new(config).fit(self);
                Ok(ClusterRun {
                    assignments: result.assignments,
                    centroids: Centroids::Modes(result.modes),
                    summary: result.summary,
                    index_stats: Some(result.index_stats),
                })
            }
            other => Err(SpecError::UnsupportedLsh {
                modality: "categorical",
                lsh: other.name(),
            }),
        }
    }
}

impl Input for &NumericDataset {
    fn fit_spec(self, spec: &ClusterSpec) -> Result<ClusterRun, SpecError> {
        check_k(spec.k, self.n_items())?;
        let init = numeric_init(spec.init, "numeric")?;
        match spec.lsh {
            Lsh::None => {
                let config = KMeansConfig {
                    k: spec.k,
                    max_iterations: spec.stop.max_iterations,
                    init,
                    seed: spec.seed,
                    tolerance: 1e-9,
                };
                let result = kmeans(self, &config);
                let dim = self.dim();
                Ok(ClusterRun {
                    assignments: result.assignments.into_iter().map(ClusterId).collect(),
                    centroids: Centroids::Means {
                        dim,
                        values: result.centroids,
                    },
                    summary: aggregate_summary(
                        result.n_iterations,
                        result.converged,
                        result.elapsed,
                        spec.k,
                        result.inertia,
                    ),
                    index_stats: None,
                })
            }
            Lsh::SimHash { bands, rows } => {
                let config = MhKMeansConfig {
                    k: spec.k,
                    bands,
                    rows,
                    stop: spec.stop,
                    init,
                    seed: spec.seed,
                };
                let result = mh_kmeans(self, &config);
                Ok(ClusterRun {
                    assignments: result.assignments,
                    centroids: Centroids::Means {
                        dim: self.dim(),
                        values: result.centroids,
                    },
                    summary: result.summary,
                    index_stats: None,
                })
            }
            other => Err(SpecError::UnsupportedLsh {
                modality: "numeric",
                lsh: other.name(),
            }),
        }
    }
}

impl Input for &MixedDataset<'_> {
    fn fit_spec(self, spec: &ClusterSpec) -> Result<ClusterRun, SpecError> {
        check_k(spec.k, self.n_items())?;
        // Both K-Prototypes paths draw initial items directly; only the
        // paper's random selection applies.
        if spec.init != crate::spec::Init::RandomItems {
            return Err(SpecError::UnsupportedInit {
                modality: "mixed",
                init: spec.init.name(),
            });
        }
        let gamma = spec.gamma.unwrap_or_else(|| suggest_gamma(self.numeric));
        match spec.lsh {
            Lsh::None => {
                let config = KPrototypesConfig {
                    k: spec.k,
                    gamma,
                    max_iterations: spec.stop.max_iterations,
                    seed: spec.seed,
                };
                let result = kprototypes(self, &config);
                Ok(ClusterRun {
                    assignments: result.assignments,
                    centroids: Centroids::Prototypes(result.prototypes),
                    summary: aggregate_summary(
                        result.n_iterations,
                        result.converged,
                        result.elapsed,
                        spec.k,
                        result.cost,
                    ),
                    index_stats: None,
                })
            }
            Lsh::Union {
                bands,
                rows,
                sim_bands,
                sim_rows,
            } => {
                let config = MhKPrototypesConfig {
                    k: spec.k,
                    gamma,
                    banding: Banding::new(bands, rows),
                    sim_bands,
                    sim_rows,
                    stop: spec.stop,
                    seed: spec.seed,
                };
                let result = mh_kprototypes(self, &config);
                Ok(ClusterRun {
                    assignments: result.assignments,
                    centroids: Centroids::Prototypes(result.prototypes),
                    summary: result.summary,
                    index_stats: None,
                })
            }
            other => Err(SpecError::UnsupportedLsh {
                modality: "mixed",
                lsh: other.name(),
            }),
        }
    }
}

/// Wraps a legacy totals-only result (`kmeans`, `kprototypes`) in the shared
/// summary shape: one aggregate iteration row carrying the final cost.
fn aggregate_summary(
    n_iterations: usize,
    converged: bool,
    elapsed: Duration,
    k: usize,
    cost: f64,
) -> RunSummary {
    RunSummary {
        iterations: vec![IterationStats {
            iteration: n_iterations,
            duration: elapsed,
            moves: 0,
            avg_candidates: k as f64,
            cost: cost.round() as u64,
        }],
        converged,
        setup: Duration::ZERO,
    }
}
