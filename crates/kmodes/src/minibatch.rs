//! Mini-batch K-Modes — the categorical adaptation of Sculley's web-scale
//! mini-batch K-Means (reference \[16\] of the paper's related work).
//!
//! Each step samples a batch of `b` items, assigns them to their nearest
//! mode by full search over `k`, and nudges only the touched clusters'
//! modes via per-cluster frequency tables. The per-step cost is `O(b·k·m)`
//! instead of `O(n·k·m)`, trading assignment completeness for speed — the
//! *orthogonal* acceleration route to the paper's shortlist idea, included
//! so the two can be compared head-to-head in the ablation experiment.

use crate::assign::best_cluster_full;
use crate::init::{initial_modes, InitMethod};
use crate::modes::Modes;
use lshclust_categorical::{ClusterId, Dataset, ValueId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration for mini-batch K-Modes.
#[derive(Clone, Debug)]
pub struct MiniBatchConfig {
    /// Number of clusters.
    pub k: usize,
    /// Items sampled per step.
    pub batch_size: usize,
    /// Number of mini-batch steps.
    pub n_steps: usize,
    /// Centroid initialisation.
    pub init: InitMethod,
    /// RNG seed (initialisation and batch sampling).
    pub seed: u64,
}

impl MiniBatchConfig {
    /// Defaults: batch of 256, `10·k/batch` steps heuristic rounded up to
    /// at least 50.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            batch_size: 256,
            n_steps: (10 * k / 256).max(50),
            init: InitMethod::RandomItems,
            seed: 0,
        }
    }

    /// Sets the batch size.
    pub fn batch_size(mut self, b: usize) -> Self {
        assert!(b > 0);
        self.batch_size = b;
        self
    }

    /// Sets the number of steps.
    pub fn n_steps(mut self, n: usize) -> Self {
        self.n_steps = n;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a mini-batch K-Modes run.
#[derive(Clone, Debug)]
pub struct MiniBatchResult {
    /// Final cluster per item (from one final full assignment pass).
    pub assignments: Vec<ClusterId>,
    /// Final modes.
    pub modes: Modes,
    /// Steps executed.
    pub n_steps: usize,
    /// Total wall-clock time (steps + final assignment).
    pub elapsed: std::time::Duration,
}

/// Per-cluster streaming frequency tables backing the mode updates.
struct FrequencySketch {
    /// `k × m` maps: value → count of batch-assigned occurrences.
    tables: Vec<HashMap<u32, u32>>,
    n_attrs: usize,
}

impl FrequencySketch {
    fn new(k: usize, n_attrs: usize) -> Self {
        Self {
            tables: (0..k * n_attrs).map(|_| HashMap::new()).collect(),
            n_attrs,
        }
    }

    /// Counts `row` into cluster `c`, returning for each attribute the
    /// current argmax value (the updated mode component).
    fn absorb(&mut self, c: ClusterId, row: &[ValueId], mode_out: &mut [ValueId]) {
        for (a, &v) in row.iter().enumerate() {
            let table = &mut self.tables[c.idx() * self.n_attrs + a];
            *table.entry(v.0).or_insert(0) += 1;
            // Deterministic argmax: highest count, then smallest value id.
            let best = table
                .iter()
                .map(|(&val, &count)| (count, std::cmp::Reverse(val)))
                .max()
                .map(|(_, std::cmp::Reverse(val))| ValueId(val))
                .expect("table non-empty after insert");
            mode_out[a] = best;
        }
    }
}

/// Runs mini-batch K-Modes.
pub fn minibatch_kmodes(dataset: &Dataset, config: &MiniBatchConfig) -> MiniBatchResult {
    assert!(config.k > 0 && config.k <= dataset.n_items());
    let start = Instant::now();
    let n = dataset.n_items();
    let m = dataset.n_attrs();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x6d62_6b6d); // "mbkm"
    let mut modes = initial_modes(dataset, config.k, config.init, config.seed);
    let mut sketch = FrequencySketch::new(config.k, m);
    let mut mode_buf = vec![ValueId(0); m];

    for _ in 0..config.n_steps {
        for _ in 0..config.batch_size.min(n) {
            let item = rng.random_range(0..n);
            let (c, _) = best_cluster_full(dataset.row(item), &modes);
            sketch.absorb(c, dataset.row(item), &mut mode_buf);
            // Write the refreshed mode straight back (centre "nudge").
            modes.set_mode(c, &mode_buf);
        }
    }

    // One final full pass so the result is a complete clustering.
    let mut assignments = vec![ClusterId(0); n];
    crate::assign::assign_all_full(dataset, &modes, &mut assignments);
    MiniBatchResult {
        assignments,
        modes,
        n_steps: config.n_steps,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    fn blob_dataset(groups: usize, per_group: usize, n_attrs: usize) -> Dataset {
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == 0 {
                            format!("g{g}n{i}")
                        } else {
                            format!("g{g}a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn separates_blobs() {
        let ds = blob_dataset(3, 10, 6);
        let result = minibatch_kmodes(
            &ds,
            &MiniBatchConfig::new(3).batch_size(16).n_steps(30).seed(0),
        );
        for g in 0..3 {
            let first = result.assignments[g * 10];
            for i in 0..10 {
                assert_eq!(result.assignments[g * 10 + i], first, "blob {g} split");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = blob_dataset(2, 8, 5);
        let cfg = MiniBatchConfig::new(2).batch_size(8).n_steps(10).seed(7);
        let a = minibatch_kmodes(&ds, &cfg);
        let b = minibatch_kmodes(&ds, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.modes, b.modes);
    }

    #[test]
    fn final_assignment_is_consistent_with_modes() {
        let ds = blob_dataset(2, 6, 4);
        let result = minibatch_kmodes(
            &ds,
            &MiniBatchConfig::new(2).batch_size(4).n_steps(20).seed(3),
        );
        for i in 0..ds.n_items() {
            let (best, _) = best_cluster_full(ds.row(i), &result.modes);
            assert_eq!(result.assignments[i], best);
        }
    }

    #[test]
    fn sketch_tracks_majority() {
        let mut sketch = FrequencySketch::new(1, 2);
        let mut mode = vec![ValueId(0); 2];
        sketch.absorb(ClusterId(0), &[ValueId(5), ValueId(1)], &mut mode);
        assert_eq!(mode, vec![ValueId(5), ValueId(1)]);
        sketch.absorb(ClusterId(0), &[ValueId(7), ValueId(1)], &mut mode);
        sketch.absorb(ClusterId(0), &[ValueId(7), ValueId(2)], &mut mode);
        assert_eq!(mode[0], ValueId(7)); // 7 seen twice, 5 once
        assert_eq!(mode[1], ValueId(1)); // tie 1-1-? no: 1 twice, 2 once
    }

    #[test]
    fn sketch_tie_breaks_to_smallest_value() {
        let mut sketch = FrequencySketch::new(1, 1);
        let mut mode = vec![ValueId(0); 1];
        sketch.absorb(ClusterId(0), &[ValueId(9)], &mut mode);
        sketch.absorb(ClusterId(0), &[ValueId(4)], &mut mode);
        // 1–1 tie: the smaller id must win.
        assert_eq!(mode[0], ValueId(4));
    }

    #[test]
    fn handles_batch_larger_than_dataset() {
        let ds = blob_dataset(2, 3, 4);
        let result = minibatch_kmodes(
            &ds,
            &MiniBatchConfig::new(2).batch_size(100).n_steps(5).seed(2),
        );
        assert_eq!(result.assignments.len(), 6);
    }
}
