//! `bench_threads` — the thread-scaling experiment behind
//! `BENCH_threads.json`.
//!
//! ```text
//! bench_threads [--quick] [--seed N] [--threads A,B,C] [--out FILE]
//!
//!   --quick       CI-sized workload (seconds instead of minutes)
//!   --seed N      master seed (default 42)
//!   --threads L   comma-separated thread counts (default 1,2,4,8)
//!   --out FILE    where to write the JSON report (default BENCH_threads.json)
//! ```

use lshclust_bench::threads::{run, ThreadsSettings};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_threads [--quick] [--seed N] [--threads 1,2,4,8] [--out FILE]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut settings = ThreadsSettings::default();
    let mut out = "BENCH_threads.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => settings.quick = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => settings.seed = s,
                None => return usage(),
            },
            "--threads" => {
                let Some(list) = args.next() else {
                    return usage();
                };
                let parsed: Option<Vec<usize>> =
                    list.split(',').map(|t| t.trim().parse().ok()).collect();
                match parsed {
                    Some(t) if !t.is_empty() => settings.threads = t,
                    _ => return usage(),
                }
            }
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = run(&settings);
    print!("{}", report.render());
    if let Err(e) = report.write_json(&out) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {out}");
    ExitCode::SUCCESS
}
