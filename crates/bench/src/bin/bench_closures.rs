//! `bench_closures` — the cluster-closure savings experiment behind
//! `BENCH_closures.json`.
//!
//! ```text
//! bench_closures [--quick] [--seed N] [--threads N] [--out FILE]
//!
//!   --quick       CI-sized workload (seconds instead of minutes)
//!   --seed N      master seed (default 42)
//!   --threads N   assignment threads for every fit (default 4)
//!   --out FILE    where to write the JSON report (default BENCH_closures.json)
//! ```
//!
//! Exits non-zero if the identity guard trips — i.e. if a closures-on fit
//! diverges from its closures-off twin on any byte-identity surface — so CI
//! can run it as a soundness check, not just a benchmark.

use lshclust_bench::closures::{run, ClosuresSettings};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_closures [--quick] [--seed N] [--threads N] [--out FILE]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut settings = ClosuresSettings::default();
    let mut out = "BENCH_closures.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => settings.quick = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => settings.seed = s,
                None => return usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) if t > 0 => settings.threads = t,
                _ => return usage(),
            },
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = run(&settings);
    print!("{}", report.render());
    if let Err(e) = report.write_json(&out) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {out}");
    if !report.identical {
        eprintln!("error: identity guard tripped — closures-on fit diverged from closures-off");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
