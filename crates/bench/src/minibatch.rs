//! Mini-batch experiment: full-batch fitting vs Sculley-style mini-batch vs
//! **shortlisted** mini-batch, per algorithm family — the fit-throughput
//! comparison behind `BENCH_minibatch.json`.
//!
//! The two acceleration routes are orthogonal: mini-batching reduces *how
//! many* assignments a step pays (`b ≪ n`), the paper's shortlist reduces
//! *what each one costs* (a handful of candidate centroids instead of all
//! `k`). This experiment runs, for each modality, three fits on one
//! synthetic workload:
//!
//! * `full`            — the family's LSH scheme, `Fit::Full`, through the
//!   facade (reference),
//! * `minibatch-full`  — Sculley baseline: every batch item searches all `k`
//!   centroids,
//! * `minibatch-lsh`   — batch items probe a periodically refreshed LSH
//!   index over the centroids (light banding: hashing must undercut the
//!   `k·m` search it replaces).
//!
//! Both mini-batch runs draw **identical batches** (same seed, same sampling
//! stream) through `lshclust_core::minibatch`, whose phase profile separates
//! assignment time from the absorb/nudge phase — the sketch nudges are
//! byte-identical work under every LSH scheme, so `assign_ms_per_step` is
//! the column where the shortlist can show up at all, and
//! `shortlist_step_speedup` (full-search assign time over shortlisted assign
//! time, per step) is the headline number. The mini-batch runs use the
//! internal entry points rather than the facade for exactly this reason —
//! the facade reports wall-clock steps only; the facade wiring itself is
//! exercised by `tests/minibatch.rs` and the `minibatch` example.

use crate::env::BenchEnv;
use lshclust::{ClusterSpec, Clusterer, Lsh};
use lshclust_categorical::Dataset;
use lshclust_core::minibatch::{
    minibatch_mh_kmeans, minibatch_mh_kmodes, minibatch_mh_kprototypes, MiniBatchParams,
    MiniBatchProfile, UnionBands,
};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::init::InitMethod;
use lshclust_kmodes::kmeans::{KMeansInit, NumericDataset};
use lshclust_kmodes::kprototypes::{suggest_gamma, MixedDataset};
use lshclust_metrics::purity;
use lshclust_minhash::Banding;
use std::path::Path;

/// Settings of a mini-batch experiment run.
#[derive(Clone, Debug)]
pub struct MiniBatchSettings {
    /// Shrinks the workload for CI smoke runs.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for MiniBatchSettings {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 42,
        }
    }
}

/// One fit measurement.
#[derive(Clone, Debug)]
pub struct FitRun {
    /// `"full"`, `"minibatch-full"` or `"minibatch-lsh"`.
    pub mode: String,
    /// The LSH scheme exercised, rendered for humans (e.g. `MinHash 8b2r`).
    pub lsh: String,
    /// Total wall-clock including setup and (for mini-batch) the final full
    /// pass, seconds.
    pub total_s: f64,
    /// Fit iterations (full passes) or mini-batch steps executed.
    pub steps: usize,
    /// Mean wall-clock milliseconds per step (mini-batch: sampling + assign
    /// + absorb + amortised refresh; full: one complete pass).
    pub ms_per_step: f64,
    /// Mean milliseconds of the **assignment phase** per step — the phase
    /// the shortlist accelerates. For the `full` reference this equals
    /// `ms_per_step` (its passes are assignment + centroid update).
    pub assign_ms_per_step: f64,
    /// Mean milliseconds of the absorb/nudge phase per step (identical work
    /// under every LSH scheme; 0 for the `full` reference).
    pub absorb_ms_per_step: f64,
    /// Total centroid-index refresh time, seconds (0 without LSH).
    pub refresh_s: f64,
    /// Batch items whose shortlist came back empty (full-search fallback).
    pub fallbacks: usize,
    /// Mean centroids searched per assigned item (`k` for full search).
    pub avg_candidates: f64,
    /// Cost of the returned clustering.
    pub final_cost: u64,
    /// Purity against the generator's labels (quality guard: acceleration
    /// must not silently destroy the clustering).
    pub purity: f64,
}

serde::impl_serde_struct!(FitRun {
    mode,
    lsh,
    total_s,
    steps,
    ms_per_step,
    assign_ms_per_step,
    absorb_ms_per_step,
    refresh_s,
    fallbacks,
    avg_candidates,
    final_cost,
    purity
});

/// The three runs of one family.
#[derive(Clone, Debug)]
pub struct FamilyComparison {
    /// `"categorical"`, `"numeric"` or `"mixed"`.
    pub family: String,
    /// Mini-batch schedule shared by both mini-batch runs.
    pub batch_size: usize,
    /// Steps of the schedule.
    pub n_steps: usize,
    /// Centroid-index refresh cadence of the shortlisted run.
    pub refresh_every: usize,
    /// The measurements.
    pub runs: Vec<FitRun>,
    /// `minibatch-full` assignment ms/step divided by `minibatch-lsh`
    /// assignment ms/step (> 1 ⇒ the shortlist pays for itself per step).
    pub shortlist_step_speedup: f64,
}

serde::impl_serde_struct!(FamilyComparison {
    family,
    batch_size,
    n_steps,
    refresh_every,
    runs,
    shortlist_step_speedup
});

/// Workload shape shared by the report.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Items per family workload.
    pub n_items: usize,
    /// Clusters.
    pub n_clusters: usize,
    /// Categorical attributes.
    pub n_attrs: usize,
    /// Numeric dimensions.
    pub dim: usize,
}

serde::impl_serde_struct!(Workload {
    n_items,
    n_clusters,
    n_attrs,
    dim
});

/// The full `BENCH_minibatch.json` payload.
#[derive(Clone, Debug)]
pub struct MiniBatchReport {
    /// Experiment marker.
    pub experiment: String,
    /// Host context and sweep axes (this experiment sweeps none — it
    /// contrasts fit disciplines at fixed threads).
    pub env: BenchEnv,
    /// Workload shape.
    pub workload: Workload,
    /// Per-family comparisons.
    pub families: Vec<FamilyComparison>,
}

serde::impl_serde_struct!(MiniBatchReport {
    experiment,
    env,
    workload,
    families
});

fn numeric_blobs(labels: &[u32], dim: usize) -> NumericDataset {
    let data: Vec<f64> = labels
        .iter()
        .enumerate()
        .flat_map(|(i, &l)| {
            (0..dim).map(move |d| {
                let h = lshclust_minhash::hashfn::mix64(u64::from(l) ^ ((d as u64) << 40));
                (h % 100) as f64 + ((i * 13 + d) as f64 * 0.37).sin() * 0.1
            })
        })
        .collect();
    NumericDataset::new(dim, data)
}

/// Digests the `full` reference run (facade-driven) into a row.
fn full_row(
    lsh: &str,
    summary: &lshclust::RunSummary,
    assignments: &[u32],
    labels: &[u32],
) -> FitRun {
    let steps = summary.n_iterations();
    let step_s: f64 = summary
        .iterations
        .iter()
        .map(|s| s.duration.as_secs_f64())
        .sum();
    let ms = if steps == 0 {
        0.0
    } else {
        step_s * 1e3 / steps as f64
    };
    FitRun {
        mode: "full".into(),
        lsh: lsh.into(),
        total_s: summary.total_time().as_secs_f64(),
        steps,
        ms_per_step: ms,
        assign_ms_per_step: ms,
        absorb_ms_per_step: 0.0,
        refresh_s: 0.0,
        fallbacks: 0,
        avg_candidates: summary.iterations.last().map_or(0.0, |s| s.avg_candidates),
        final_cost: summary.best_cost().unwrap_or(0),
        purity: purity(assignments, labels),
    }
}

/// Digests one engine-driven mini-batch run into a row. The last iteration
/// row of the summary is the final full pass: excluded from per-step means,
/// it supplies the run's cost.
#[allow(clippy::too_many_arguments)]
fn minibatch_row(
    mode: &str,
    lsh: &str,
    summary: &lshclust::RunSummary,
    profile: &MiniBatchProfile,
    assignments: &[u32],
    labels: &[u32],
) -> FitRun {
    let rows = &summary.iterations;
    let steps_only = &rows[..rows.len().saturating_sub(1)];
    let steps = steps_only.len().max(1);
    let step_s: f64 = steps_only.iter().map(|s| s.duration.as_secs_f64()).sum();
    FitRun {
        mode: mode.into(),
        lsh: lsh.into(),
        total_s: summary.total_time().as_secs_f64(),
        steps,
        ms_per_step: step_s * 1e3 / steps as f64,
        assign_ms_per_step: profile.assign.as_secs_f64() * 1e3 / steps as f64,
        absorb_ms_per_step: profile.absorb.as_secs_f64() * 1e3 / steps as f64,
        refresh_s: profile.refresh.as_secs_f64(),
        fallbacks: profile.fallbacks,
        avg_candidates: steps_only.iter().map(|s| s.avg_candidates).sum::<f64>() / steps as f64,
        final_cost: rows.last().map_or(0, |s| s.cost),
        purity: purity(assignments, labels),
    }
}

fn labels_of(assignments: &[lshclust::ClusterId]) -> Vec<u32> {
    assignments.iter().map(|c| c.0).collect()
}

fn family_of(family: &str, schedule: MiniBatchParams, runs: Vec<FitRun>) -> FamilyComparison {
    let assign = |mode: &str| {
        runs.iter()
            .find(|r| r.mode == mode)
            .map_or(0.0, |r| r.assign_ms_per_step)
    };
    let lsh_ms = assign("minibatch-lsh");
    let full_ms = assign("minibatch-full");
    FamilyComparison {
        family: family.into(),
        batch_size: schedule.batch_size,
        n_steps: schedule.n_steps,
        refresh_every: schedule.refresh_every,
        runs,
        shortlist_step_speedup: if lsh_ms > 0.0 { full_ms / lsh_ms } else { 0.0 },
    }
}

/// Runs the full experiment and returns the report.
pub fn run(settings: &MiniBatchSettings) -> MiniBatchReport {
    let (n_items, n_clusters, n_attrs, dim) = if settings.quick {
        (3_000, 50, 20, 8)
    } else {
        (20_000, 200, 40, 16)
    };
    let schedule = if settings.quick {
        MiniBatchParams {
            batch_size: 256,
            n_steps: 30,
            refresh_every: 5,
            closures: true,
        }
    } else {
        MiniBatchParams {
            batch_size: 512,
            n_steps: 60,
            refresh_every: 10,
            closures: true,
        }
    };
    let seed = settings.seed;
    let max_iter = 25;
    let k = n_clusters;
    let dataset: Dataset = generate(&DatgenConfig::new(n_items, n_clusters, n_attrs).seed(seed));
    let labels: Vec<u32> = dataset.labels().expect("datgen labels").to_vec();
    let numeric = numeric_blobs(&labels, dim);
    let mixed = MixedDataset::new(&dataset, &numeric);
    let gamma = suggest_gamma(&numeric);

    // Light centroid-index banding for the shortlisted runs: hashing and
    // probing a batch item must undercut the k·m search it replaces (the
    // fit-time 20b5r signature would cost more than it saves here).
    let cat_banding = Banding::new(8, 2);
    let (sim_bands, sim_rows) = (4u32, 8u32);

    let mut families = Vec::new();

    eprintln!("# minibatch: categorical");
    let facade = Clusterer::new(
        ClusterSpec::new(k)
            .lsh(Lsh::MinHash { bands: 20, rows: 5 })
            .seed(seed)
            .max_iterations(max_iter),
    )
    .fit(&dataset)
    .expect("categorical fit");
    let mb_full = minibatch_mh_kmodes(
        &dataset,
        k,
        InitMethod::RandomItems,
        seed,
        None,
        &schedule,
        1,
    );
    let mb_lsh = minibatch_mh_kmodes(
        &dataset,
        k,
        InitMethod::RandomItems,
        seed,
        Some(cat_banding),
        &schedule,
        1,
    );
    families.push(family_of(
        "categorical",
        schedule,
        vec![
            full_row("MinHash 20b5r", &facade.summary, &facade.labels(), &labels),
            minibatch_row(
                "minibatch-full",
                "None",
                &mb_full.summary,
                &mb_full.profile,
                &labels_of(&mb_full.assignments),
                &labels,
            ),
            minibatch_row(
                "minibatch-lsh",
                "MinHash 8b2r",
                &mb_lsh.summary,
                &mb_lsh.profile,
                &labels_of(&mb_lsh.assignments),
                &labels,
            ),
        ],
    ));

    eprintln!("# minibatch: numeric");
    let facade = Clusterer::new(
        ClusterSpec::new(k)
            .lsh(Lsh::SimHash { bands: 8, rows: 16 })
            .seed(seed)
            .max_iterations(max_iter),
    )
    .fit(&numeric)
    .expect("numeric fit");
    let mb_full = minibatch_mh_kmeans(
        &numeric,
        k,
        KMeansInit::RandomItems,
        seed,
        None,
        &schedule,
        1,
    );
    let mb_lsh = minibatch_mh_kmeans(
        &numeric,
        k,
        KMeansInit::RandomItems,
        seed,
        Some((sim_bands, sim_rows)),
        &schedule,
        1,
    );
    families.push(family_of(
        "numeric",
        schedule,
        vec![
            full_row("SimHash 8b16r", &facade.summary, &facade.labels(), &labels),
            minibatch_row(
                "minibatch-full",
                "None",
                &mb_full.summary,
                &mb_full.profile,
                &labels_of(&mb_full.assignments),
                &labels,
            ),
            minibatch_row(
                "minibatch-lsh",
                "SimHash 4b8r",
                &mb_lsh.summary,
                &mb_lsh.profile,
                &labels_of(&mb_lsh.assignments),
                &labels,
            ),
        ],
    ));

    eprintln!("# minibatch: mixed");
    let facade = Clusterer::new(
        ClusterSpec::new(k)
            .lsh(Lsh::Union {
                bands: 20,
                rows: 5,
                sim_bands: 8,
                sim_rows: 16,
            })
            .seed(seed)
            .max_iterations(max_iter),
    )
    .fit(&mixed)
    .expect("mixed fit");
    let mb_full = minibatch_mh_kprototypes(&mixed, k, gamma, seed, None, &schedule, 1);
    let mb_lsh = minibatch_mh_kprototypes(
        &mixed,
        k,
        gamma,
        seed,
        Some(UnionBands {
            banding: cat_banding,
            sim_bands,
            sim_rows,
        }),
        &schedule,
        1,
    );
    families.push(family_of(
        "mixed",
        schedule,
        vec![
            full_row(
                "Union 20b5r + 8b16r",
                &facade.summary,
                &facade.labels(),
                &labels,
            ),
            minibatch_row(
                "minibatch-full",
                "None",
                &mb_full.summary,
                &mb_full.profile,
                &labels_of(&mb_full.assignments),
                &labels,
            ),
            minibatch_row(
                "minibatch-lsh",
                "Union 8b2r + 4b8r",
                &mb_lsh.summary,
                &mb_lsh.profile,
                &labels_of(&mb_lsh.assignments),
                &labels,
            ),
        ],
    ));

    MiniBatchReport {
        experiment: "minibatch".into(),
        env: BenchEnv::capture(settings.quick, seed),
        workload: Workload {
            n_items,
            n_clusters,
            n_attrs,
            dim,
        },
        families,
    }
}

impl MiniBatchReport {
    /// Writes the report as pretty JSON to `path`.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        crate::env::write_report(self, path)
    }

    /// Renders an aligned text summary (one table per family).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mini-batch comparison  ({}, n={}, k={})",
            self.env.banner(),
            self.workload.n_items,
            self.workload.n_clusters
        );
        for family in &self.families {
            let _ = writeln!(
                out,
                "\n[{}] {}x{} batch, refresh every {}  (assign step speedup: {:.2}x)",
                family.family,
                family.n_steps,
                family.batch_size,
                family.refresh_every,
                family.shortlist_step_speedup
            );
            let _ = writeln!(
                out,
                "{:>16}  {:>19}  {:>6}  {:>10}  {:>11}  {:>11}  {:>9}  {:>11}  {:>7}",
                "mode",
                "lsh",
                "steps",
                "total (s)",
                "ms/step",
                "assign ms",
                "avg cand",
                "cost",
                "purity"
            );
            for r in &family.runs {
                let _ = writeln!(
                    out,
                    "{:>16}  {:>19}  {:>6}  {:>10.3}  {:>11.3}  {:>11.3}  {:>9.2}  {:>11}  {:>7.3}",
                    r.mode,
                    r.lsh,
                    r.steps,
                    r.total_s,
                    r.ms_per_step,
                    r.assign_ms_per_step,
                    r.avg_candidates,
                    r.final_cost,
                    r.purity
                );
            }
        }
        out
    }
}
