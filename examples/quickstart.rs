//! Quickstart: cluster a synthetic categorical dataset with plain K-Modes
//! and with MH-K-Modes, and compare time, iterations and purity.
//!
//! ```text
//! cargo run --release -p lshclust-core --example quickstart
//! ```

use lshclust_core::mhkmodes::{MhKModes, MhKModesConfig};
use lshclust_datagen::datgen::{generate, DatgenConfig};
use lshclust_kmodes::{KModes, KModesConfig};
use lshclust_metrics::purity;
use lshclust_minhash::Banding;

fn main() {
    // A miniature of the paper's base dataset, ratios preserved:
    // 4 500 items, 1 000 ground-truth clusters, 100 attributes, 40 000-value
    // domain, conjunctive rules over 40–80 attributes.
    let seed = 42;
    let config = DatgenConfig::new(4_500, 1_000, 100).seed(seed);
    println!("generating {} items x {} attrs, {} rule clusters ...",
             config.n_items, config.n_attrs, config.n_clusters);
    let dataset = generate(&config);
    let labels = dataset.labels().unwrap().to_vec();
    let k = config.n_clusters;

    // --- baseline: full-search K-Modes -----------------------------------
    println!("\nrunning K-Modes (full search over k={k}) ...");
    let baseline = KModes::new(KModesConfig::new(k).seed(seed).max_iterations(30)).fit(&dataset);
    let baseline_pred: Vec<u32> = baseline.assignments.iter().map(|c| c.0).collect();
    println!(
        "  {} iterations, converged: {}, total {:.2}s, purity {:.3}",
        baseline.summary.n_iterations(),
        baseline.summary.converged,
        baseline.summary.total_time().as_secs_f64(),
        purity(&baseline_pred, &labels),
    );

    // --- accelerated: MH-K-Modes with the paper's best parameters --------
    let banding = Banding::new(20, 5);
    println!("\nrunning MH-K-Modes ({banding}: threshold similarity {:.3}) ...", banding.threshold());
    let mh = MhKModes::new(MhKModesConfig::new(k, banding).seed(seed).max_iterations(30))
        .fit(&dataset);
    let mh_pred: Vec<u32> = mh.assignments.iter().map(|c| c.0).collect();
    println!(
        "  {} iterations, converged: {}, total {:.2}s, purity {:.3}",
        mh.summary.n_iterations(),
        mh.summary.converged,
        mh.summary.total_time().as_secs_f64(),
        purity(&mh_pred, &labels),
    );
    for s in &mh.summary.iterations {
        println!(
            "    iter {}: {:.3}s, avg shortlist {:.2} of {k} clusters, {} moves",
            s.iteration,
            s.duration.as_secs_f64(),
            s.avg_candidates,
            s.moves
        );
    }

    let speedup = baseline.summary.total_time().as_secs_f64()
        / mh.summary.total_time().as_secs_f64();
    println!("\nspeedup (total time): {speedup:.2}x  (paper reports 2x-6x at full scale)");
}
