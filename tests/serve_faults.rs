//! Fault injection against a live socket server (`lshclust::serve::socket`).
//!
//! Every test drives real TCP connections into a real in-process
//! [`SocketServer`] and misbehaves on purpose — garbage bytes, oversized
//! lines, half-written requests, mid-request disconnects, readers that
//! never read — while asserting the hardening contract:
//!
//! * the server never panics (it keeps answering, and the drain joins
//!   every connection thread);
//! * healthy clients sharing the server keep getting byte-identical
//!   answers;
//! * no ticket is ever orphaned: after the drain,
//!   `SocketReport::tickets.submitted == resolved`.

use lshclust::serve::proto::ProtoEngine;
use lshclust::serve::socket::{SocketOptions, SocketServer};
use lshclust::serve::{ModelServer, ServerConfig};
use lshclust::{ClusterId, ClusterSpec, Clusterer, DatasetBuilder, FittedModel, Lsh};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

struct Fixture {
    /// Raw string rows, one per item, in wire form.
    rows: Vec<Vec<String>>,
    model: FittedModel,
    expected: Vec<ClusterId>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let groups = 3;
        let per_group = 8;
        let n_attrs = 5;
        let mut rows = Vec::new();
        let mut b = DatasetBuilder::anonymous(n_attrs);
        for g in 0..groups {
            for i in 0..per_group {
                let row: Vec<String> = (0..n_attrs)
                    .map(|a| {
                        if a == n_attrs - 1 {
                            format!("g{g}-n{i}")
                        } else {
                            format!("g{g}-a{a}")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = row.iter().map(String::as_str).collect();
                b.push_str_row(&refs, Some(g as u32)).unwrap();
                rows.push(row);
            }
        }
        let ds = b.finish();
        let spec = ClusterSpec::new(3)
            .lsh(Lsh::MinHash { bands: 8, rows: 2 })
            .seed(13);
        let run = Clusterer::new(spec).fit(&ds).unwrap();
        let expected = run.model.predict(&ds).unwrap();
        Fixture {
            rows,
            model: run.model,
            expected,
        }
    })
}

fn start_server(config: ServerConfig, options: SocketOptions) -> (SocketServer, SocketAddr) {
    let fix = fixture();
    let server = Arc::new(ModelServer::start(fix.model.clone(), config));
    let engine = ProtoEngine::new(server, None);
    let socket = SocketServer::bind_tcp("127.0.0.1:0", engine, options).expect("bind 127.0.0.1:0");
    let addr = socket.local_addr().expect("tcp server has an address");
    (socket, addr)
}

fn coalescing_config() -> ServerConfig {
    ServerConfig::default()
        .workers(2)
        .max_batch(8)
        .flush_latency(Duration::from_millis(2))
}

/// One NDJSON predict request for row `i`, tagged with `id`.
fn predict_line(fix: &Fixture, i: usize, id: u64) -> String {
    let values: Vec<String> = fix.rows[i].iter().map(|v| format!("\"{v}\"")).collect();
    format!(
        r#"{{"id":{id},"predict":{{"row":[{}]}}}}"#,
        values.join(",")
    )
}

/// A client with a read deadline: a hung server fails the test instead of
/// hanging it.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("send line");
        self.stream.write_all(b"\n").expect("send newline");
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send raw");
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read reply");
        assert!(n > 0, "server closed the connection unexpectedly");
        line
    }

    /// Reads one reply and asserts it is `{"id":…,"ok":{"cluster":…}}` with
    /// the serially-predicted cluster for row `i`.
    fn expect_cluster(&mut self, fix: &Fixture, i: usize, id: u64) {
        let reply = self.read_line();
        let value = serde_json::parse(reply.trim()).expect("reply parses");
        assert_eq!(
            value.get("id").and_then(|v| v.as_u64()),
            Some(id),
            "{reply}"
        );
        let ok = value.get("ok").unwrap_or_else(|| panic!("not ok: {reply}"));
        assert_eq!(
            ok.get("cluster").and_then(|v| v.as_u64()),
            Some(u64::from(fix.expected[i].0)),
            "row {i}: {reply}"
        );
    }

    fn expect_err(&mut self) -> String {
        let reply = self.read_line();
        let value = serde_json::parse(reply.trim()).expect("reply parses");
        assert!(value.get("err").is_some(), "expected err line, got {reply}");
        reply
    }
}

#[test]
fn garbage_bytes_get_err_replies_and_healthy_clients_keep_answering() {
    let fix = fixture();
    let (socket, addr) = start_server(coalescing_config(), SocketOptions::default());

    let mut hostile = Client::connect(addr);
    hostile.send_raw(b"\x00\xfe\xffnot json at all\n");
    hostile.send_raw(b"{{{[[\n");
    hostile.expect_err();
    hostile.expect_err();
    // The same connection still speaks the protocol after the garbage.
    hostile.send(&predict_line(fix, 0, 1));
    hostile.expect_cluster(fix, 0, 1);

    let mut healthy = Client::connect(addr);
    for (id, i) in (0..fix.rows.len()).enumerate() {
        healthy.send(&predict_line(fix, i, id as u64));
    }
    for (id, i) in (0..fix.rows.len()).enumerate() {
        healthy.expect_cluster(fix, i, id as u64);
    }

    let report = socket.shutdown();
    assert_eq!(report.connections, 2);
    assert_eq!(
        report.tickets.submitted, report.tickets.resolved,
        "orphaned tickets: {:?}",
        report.tickets
    );
}

#[test]
fn oversized_lines_are_discarded_and_the_connection_survives() {
    let fix = fixture();
    let (socket, addr) = start_server(
        coalescing_config(),
        SocketOptions::default().max_line_bytes(256),
    );

    let mut client = Client::connect(addr);
    // Way past the cap, no newline until the very end — the reader must
    // answer with `err` and discard up to the newline, not buffer 64 KiB.
    let huge = format!("{{\"predict\":{{\"row\":[\"{}\"]}}}}\n", "x".repeat(65536));
    client.send_raw(huge.as_bytes());
    let err = client.expect_err();
    assert!(err.contains("exceeds 256 bytes"), "{err}");
    // A complete over-cap line arriving in one read, newline included, is
    // rejected too — the cap is on the line, not on the read residual.
    let over = format!("{{\"predict\":{{\"row\":[\"{}\"]}}}}\n", "y".repeat(300));
    client.send_raw(over.as_bytes());
    let err = client.expect_err();
    assert!(err.contains("exceeds 256 bytes"), "{err}");
    // The next well-formed line on the same connection is served normally.
    client.send(&predict_line(fix, 3, 9));
    client.expect_cluster(fix, 3, 9);

    let report = socket.shutdown();
    assert_eq!(report.tickets.submitted, report.tickets.resolved);
}

#[test]
fn half_written_lines_and_mid_request_disconnects_leak_nothing() {
    let fix = fixture();
    let (socket, addr) = start_server(coalescing_config(), SocketOptions::default());

    // A client that dies mid-line: complete request, then a truncated JSON
    // fragment with no newline, then a hard disconnect without reading.
    let mut dying = Client::connect(addr);
    dying.send(&predict_line(fix, 1, 1));
    dying.send_raw(br#"{"id":2,"pred"#);
    dying.stream.shutdown(Shutdown::Both).unwrap();
    drop(dying);

    // A client whose *complete* trailing line is missing its newline when
    // the write half closes: EOF flushes it through the parser, so the
    // reply still arrives.
    let mut eof_client = Client::connect(addr);
    let line = predict_line(fix, 2, 7);
    eof_client.send_raw(line.as_bytes());
    eof_client.stream.shutdown(Shutdown::Write).unwrap();
    eof_client.expect_cluster(fix, 2, 7);

    // A healthy client is unaffected throughout.
    let mut healthy = Client::connect(addr);
    for (id, i) in (0..fix.rows.len()).enumerate() {
        healthy.send(&predict_line(fix, i, id as u64));
        healthy.expect_cluster(fix, i, id as u64);
    }

    let report = socket.shutdown();
    assert_eq!(report.connections, 3);
    assert_eq!(
        report.tickets.submitted, report.tickets.resolved,
        "mid-request disconnects must not orphan tickets: {:?}",
        report.tickets
    );
}

/// A long-lived daemon serving many short-lived clients must not leak one
/// fd (or thread handle) per past connection: ended connections leave the
/// server's registries promptly, not at shutdown.
#[test]
fn short_lived_connections_are_pruned_from_the_registries() {
    let fix = fixture();
    let (socket, addr) = start_server(coalescing_config(), SocketOptions::default());

    for round in 0..32u64 {
        let mut client = Client::connect(addr);
        let i = (round as usize) % fix.rows.len();
        client.send(&predict_line(fix, i, round));
        client.expect_cluster(fix, i, round);
        // Dropping the client closes its socket; the server-side reader
        // sees EOF within its read-timeout tick and the connection ends.
    }

    // Readers notice EOF within ~100ms; the accept loop reaps finished
    // threads on its ~5ms idle tick. Poll instead of sleeping a fixed
    // amount so the test is fast when the server is.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while socket.live_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        socket.live_connections(),
        0,
        "ended connections must be pruned, not held until shutdown"
    );

    let report = socket.shutdown();
    assert_eq!(report.connections, 32);
    assert_eq!(report.tickets.submitted, report.tickets.resolved);
}

#[test]
fn slow_reader_does_not_stall_healthy_clients() {
    let fix = fixture();
    let (socket, addr) = start_server(coalescing_config(), SocketOptions::default());

    // Stuff requests in without ever reading a reply.
    let mut slow = Client::connect(addr);
    for id in 0..64u64 {
        slow.send(&predict_line(fix, (id as usize) % fix.rows.len(), id));
    }

    // The healthy client's answers arrive promptly and correctly while the
    // slow reader's replies queue up elsewhere.
    let started = std::time::Instant::now();
    let mut healthy = Client::connect(addr);
    for (id, i) in (0..fix.rows.len()).enumerate() {
        healthy.send(&predict_line(fix, i, id as u64));
        healthy.expect_cluster(fix, i, id as u64);
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "healthy client stalled behind a slow reader: {:?}",
        started.elapsed()
    );

    let report = socket.shutdown();
    assert_eq!(
        report.tickets.submitted, report.tickets.resolved,
        "unread replies must still resolve their tickets: {:?}",
        report.tickets
    );
}

#[test]
fn client_requested_shutdown_unblocks_wait_and_drains() {
    let fix = fixture();
    let (socket, addr) = start_server(coalescing_config(), SocketOptions::default());

    let waiter = std::thread::spawn(move || socket.wait());

    let mut client = Client::connect(addr);
    client.send(&predict_line(fix, 0, 1));
    client.expect_cluster(fix, 0, 1);
    client.send(r#"{"id":2,"shutdown":true}"#);
    let reply = client.read_line();
    assert!(reply.contains(r#""shutdown":true"#), "{reply}");

    let report = waiter.join().expect("wait() returns after shutdown");
    assert_eq!(report.tickets.submitted, report.tickets.resolved);
    // New connections are refused or go unanswered after the drain; either
    // way the server side is gone — a fresh connect must not be served.
    if let Ok(stream) = TcpStream::connect(addr) {
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut s = stream;
        let _ = s.write_all(b"{\"stats\":true}\n");
        let mut reader = BufReader::new(s);
        let mut line = String::new();
        // EOF (Ok(0)) or a timeout error both prove nobody is serving.
        assert!(!matches!(reader.read_line(&mut line), Ok(n) if n > 0));
    }
}

/// Starting a second daemon on an in-use Unix socket path must not delete
/// the live socket out from under the first; only a genuinely stale file
/// (nothing answering) is reclaimed.
#[cfg(unix)]
#[test]
fn bind_unix_refuses_a_live_socket_and_reclaims_a_stale_one() {
    use std::os::unix::net::UnixStream;

    let fix = fixture();
    let path = std::env::temp_dir().join(format!("lshclust-fault-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let engine = |config: ServerConfig| {
        ProtoEngine::new(
            Arc::new(ModelServer::start(fix.model.clone(), config)),
            None,
        )
    };
    let first =
        SocketServer::bind_unix(&path, engine(coalescing_config()), SocketOptions::default())
            .expect("first bind");
    // Second bind on the same path: refused, and the first keeps serving.
    match SocketServer::bind_unix(&path, engine(coalescing_config()), SocketOptions::default()) {
        Ok(_) => panic!("second bind must fail while the first server is live"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::AddrInUse, "{e}"),
    }
    let mut stream = UnixStream::connect(&path).expect("first server still reachable");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(b"{\"stats\":true}\n").unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    assert!(reply.contains("\"ok\""), "{reply}");
    let _ = first.shutdown();

    // The file is now stale (nothing answers): a fresh bind reclaims it.
    let third =
        SocketServer::bind_unix(&path, engine(coalescing_config()), SocketOptions::default())
            .expect("stale socket file is reclaimed");
    let _ = third.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// The soak satellite, in-process: four concurrent clients mixing predicts,
/// `stats`, and a same-artifact `reload`; one client is killed mid-stream.
/// Every answer a surviving client reads is diffed against the serial
/// `FittedModel::predict` baseline.
#[test]
fn soak_four_clients_mixed_traffic_one_killed_mid_stream() {
    let fix = fixture();
    let (socket, addr) = start_server(coalescing_config().hot_keys(256), SocketOptions::default());

    // Reload target: the same model saved as an artifact, so a mid-soak
    // generation bump (which wipes the hot-key cache) never changes the
    // expected clusters — answers stay diffable against one baseline.
    let artifact =
        std::env::temp_dir().join(format!("serve-soak-model-{}.json", std::process::id()));
    fix.model.save(&artifact).expect("save soak artifact");

    std::thread::scope(|scope| {
        // Three well-behaved clients: predict every row twice (the second
        // pass exercises cache hits), with stats and reload mixed in.
        for c in 0..3usize {
            let artifact = &artifact;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for pass in 0..2 {
                    for (seq, i) in (0..fix.rows.len()).enumerate() {
                        let id = (pass * 1000 + seq) as u64;
                        client.send(&predict_line(fix, i, id));
                        client.expect_cluster(fix, i, id);
                        if seq % 7 == c {
                            client.send(r#"{"stats":true}"#);
                            let stats = client.read_line();
                            assert!(stats.contains("\"ok\""), "{stats}");
                        }
                        if pass == 0 && seq == 5 && c == 0 {
                            client.send(&format!(r#"{{"reload":"{}"}}"#, artifact.display()));
                            let reply = client.read_line();
                            assert!(reply.contains("\"reloaded\":true"), "{reply}");
                        }
                    }
                }
            });
        }
        // The victim: fires a burst of predicts, reads two replies, dies.
        scope.spawn(move || {
            let mut victim = Client::connect(addr);
            for id in 0..10u64 {
                victim.send(&predict_line(fix, (id as usize) % fix.rows.len(), id));
            }
            victim.expect_cluster(fix, 0, 0);
            victim.expect_cluster(fix, 1, 1);
            victim.stream.shutdown(Shutdown::Both).unwrap();
        });
    });

    let report = socket.shutdown();
    let _ = std::fs::remove_file(&artifact);
    assert_eq!(report.connections, 4);
    assert_eq!(
        report.tickets.submitted, report.tickets.resolved,
        "soak must leak no tickets: {:?}",
        report.tickets
    );
    assert!(
        report.cache.hits > 0,
        "repeated rows under hot_keys(256) must hit the cache: {:?}",
        report.cache
    );
}
