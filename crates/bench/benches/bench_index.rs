//! Micro-bench: LSH index construction and shortlist queries.
//!
//! Ablation: live bucket scanning (paper-faithful Algorithm 2) vs
//! precomputed candidate lists (identical results, memory-for-time trade),
//! across the paper's banding parameter sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lshclust_bench::scale::Settings;
use lshclust_bench::scale::SHAPE_FIG2;
use lshclust_bench::synthetic::dataset_for;
use lshclust_categorical::ClusterId;
use lshclust_minhash::index::LshIndexBuilder;
use lshclust_minhash::{Banding, QueryMode};
use std::hint::black_box;

fn bench_index(c: &mut Criterion) {
    let settings = Settings {
        scale: 0.01,
        seed: 42,
        out_dir: None,
    };
    let shape = SHAPE_FIG2.scaled(settings.scale); // 900 items, 200 clusters
    let dataset = dataset_for(shape, &settings);
    let initial: Vec<ClusterId> = dataset
        .labels()
        .unwrap()
        .iter()
        .map(|&l| ClusterId(l))
        .collect();

    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for label in ["1b1r", "20b2r", "20b5r", "50b5r"] {
        let banding = lshclust_bench::scale::banding_by_label(label).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &banding,
            |b, &banding| {
                b.iter(|| {
                    black_box(
                        LshIndexBuilder::new(banding)
                            .seed(42)
                            .build(&dataset, &initial)
                            .stats(),
                    )
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("shortlist_query");
    for (mode, name) in [
        (QueryMode::ScanBuckets, "scan"),
        (QueryMode::Precomputed, "precomputed"),
    ] {
        let index = LshIndexBuilder::new(Banding::new(20, 5))
            .seed(42)
            .mode(mode)
            .build(&dataset, &initial);
        let mut scratch = index.make_scratch(shape.n_clusters);
        group.bench_function(BenchmarkId::new("20b5r", name), |b| {
            let mut item = 0u32;
            b.iter(|| {
                index.shortlist(black_box(item), &mut scratch, false);
                item = (item + 1) % dataset.n_items() as u32;
                black_box(scratch.clusters.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
