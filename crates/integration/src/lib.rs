//! Carrier package for the workspace-root integration test suite; see `tests/` at the repository root.
