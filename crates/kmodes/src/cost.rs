//! The K-Modes objective: `P(W, Q) = Σ_l Σ_i w_il · d(X_i, Q_l)` (Eq. 4).
//!
//! With hard assignments the membership matrix `W` collapses to a cluster id
//! per item, so the cost is the sum of each item's distance to its assigned
//! mode.

use crate::modes::Modes;
use lshclust_categorical::dissimilarity::matching;
use lshclust_categorical::{ClusterId, Dataset};

/// Computes the clustering cost `P(W, Q)`.
pub fn total_cost(dataset: &Dataset, modes: &Modes, assignments: &[ClusterId]) -> u64 {
    assert_eq!(assignments.len(), dataset.n_items());
    let mut cost = 0u64;
    for (item, &c) in assignments.iter().enumerate() {
        cost += u64::from(matching(dataset.row(item), modes.of(c)));
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshclust_categorical::DatasetBuilder;

    fn setup() -> (Dataset, Modes) {
        let mut b = DatasetBuilder::anonymous(2);
        b.push_str_row(&["a", "b"], None).unwrap();
        b.push_str_row(&["a", "c"], None).unwrap();
        b.push_str_row(&["x", "y"], None).unwrap();
        let ds = b.finish();
        let modes = Modes::from_items(&ds, &[0, 2]);
        (ds, modes)
    }

    #[test]
    fn perfect_assignment_costs_zero() {
        let (ds, modes) = setup();
        let a = vec![ClusterId(0), ClusterId(0), ClusterId(1)];
        // Item 1 differs from mode 0 in one attribute.
        assert_eq!(total_cost(&ds, &modes, &a), 1);
    }

    #[test]
    fn worse_assignment_costs_more() {
        let (ds, modes) = setup();
        let good = vec![ClusterId(0), ClusterId(0), ClusterId(1)];
        let bad = vec![ClusterId(1), ClusterId(1), ClusterId(0)];
        assert!(total_cost(&ds, &modes, &bad) > total_cost(&ds, &modes, &good));
    }

    #[test]
    fn empty_dataset_costs_zero() {
        let b = DatasetBuilder::anonymous(1);
        let ds = b.finish();
        let modes = Modes::from_parts(1, 1, vec![lshclust_categorical::ValueId(0)]);
        assert_eq!(total_cost(&ds, &modes, &[]), 0);
    }

    #[test]
    fn cost_decreases_after_mode_recompute() {
        // Recomputing modes for fixed assignments can never increase cost
        // (Eq. 3 optimality) — spot-check the mechanism.
        let mut b = DatasetBuilder::anonymous(1);
        for s in ["a", "a", "b"] {
            b.push_str_row(&[s], None).unwrap();
        }
        let ds = b.finish();
        let mut modes = Modes::from_items(&ds, &[2]); // mode "b"
        let a = vec![ClusterId(0); 3];
        let before = total_cost(&ds, &modes, &a); // 2 mismatches
        modes.recompute(&ds, &a); // majority "a"
        let after = total_cost(&ds, &modes, &a); // 1 mismatch
        assert!(after <= before);
        assert_eq!(after, 1);
    }
}
