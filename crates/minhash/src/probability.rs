//! The analytic probability model of §III-A2 – §III-D.
//!
//! * [`candidate_probability`] — `P[pair] = 1 − (1 − s^r)^b` (Tables I–II,
//!   column "Probability"),
//! * [`cluster_hit_probability`] — probability that *some* of `c` similar
//!   items in a cluster collides, `1 − (1 − s^r)^{b·c}` (Tables I–II, column
//!   "MH-K-Modes Probability"),
//! * [`error_bound`] — the §III-C bound on missing the true best cluster,
//! * [`LshParams`] — an `(r, b)` advisor inverting the S-curve.

/// Probability that two items of Jaccard similarity `s` become a candidate
/// pair under `b` bands × `r` rows: `1 − (1 − s^r)^b`.
pub fn candidate_probability(s: f64, rows: u32, bands: u32) -> f64 {
    assert!((0.0..=1.0).contains(&s), "similarity must be in [0,1]");
    1.0 - (1.0 - s.powi(rows as i32)).powi(bands as i32)
}

/// Probability that at least one of `c` items (each with Jaccard similarity
/// ≥ `s` to the query) collides with the query: `1 − (1 − s^r)^{b·c}`.
///
/// This is the paper's key observation (§III-D): to shortlist a *cluster* we
/// need only one colliding member, so the per-pair probability compounds with
/// cluster size and the usual strict `(r, b)` selection rules can be relaxed.
pub fn cluster_hit_probability(s: f64, rows: u32, bands: u32, c: u32) -> f64 {
    assert!((0.0..=1.0).contains(&s), "similarity must be in [0,1]");
    1.0 - (1.0 - s.powi(rows as i32)).powf(f64::from(bands) * f64::from(c))
}

/// Upper bound on the probability that the index fails to shortlist the true
/// best cluster for an item with `n_attrs` attributes (§III-C):
///
/// `P[miss] ≤ (1 − (1/(2m−1))^r)^{b·|C_n|}`
///
/// where `|C_n|` is the size of the best cluster. The bound uses the §III-C
/// argument that the best cluster must contain an item sharing at least one
/// attribute value, whose similarity is therefore at least `1/(2m−1)`.
pub fn error_bound(n_attrs: usize, rows: u32, bands: u32, cluster_size: u32) -> f64 {
    let s = lshclust_categorical::dissimilarity::jaccard_lower_bound(n_attrs);
    (1.0 - s.powi(rows as i32)).powf(f64::from(bands) * f64::from(cluster_size))
}

/// LSH parameter advisor: picks `(r, b)` for a target similarity threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LshParams {
    /// Rows per band.
    pub rows: u32,
    /// Number of bands.
    pub bands: u32,
}

impl LshParams {
    /// Chooses the smallest `b` for each `r ∈ [1, max_rows]` such that items
    /// with similarity `s_target` are caught with probability at least
    /// `p_target`, then returns the candidate with the fewest total hash
    /// functions `r·b` (cheapest signatures).
    ///
    /// Inverting `1 − (1 − s^r)^b ≥ p` gives
    /// `b ≥ ln(1 − p) / ln(1 − s^r)`.
    pub fn for_threshold(s_target: f64, p_target: f64, max_rows: u32) -> Self {
        assert!((0.0..1.0).contains(&p_target), "p_target must be in [0,1)");
        assert!(
            s_target > 0.0 && s_target <= 1.0,
            "s_target must be in (0,1]"
        );
        assert!(max_rows >= 1);
        let mut best: Option<(u64, LshParams)> = None;
        for rows in 1..=max_rows {
            let sr = s_target.powi(rows as i32);
            if sr >= 1.0 {
                // s_target == 1.0: a single band of r rows always matches.
                let cand = LshParams { rows, bands: 1 };
                let cost = u64::from(rows);
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, cand));
                }
                continue;
            }
            let bands_f = ((1.0 - p_target).ln() / (1.0 - sr).ln()).ceil();
            if !bands_f.is_finite() || bands_f > u32::MAX as f64 {
                continue;
            }
            let bands = (bands_f as u32).max(1);
            let cost = u64::from(rows) * u64::from(bands);
            let cand = LshParams { rows, bands };
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, cand));
            }
        }
        best.expect("at least rows=1 always yields parameters").1
    }

    /// Like [`Self::for_threshold`] but targets *cluster* recall: assumes at
    /// least `cluster_size` similar items per cluster, so each effective band
    /// count is multiplied by `cluster_size` (§III-D relaxation).
    pub fn for_cluster_threshold(
        s_target: f64,
        p_target: f64,
        max_rows: u32,
        cluster_size: u32,
    ) -> Self {
        assert!(cluster_size >= 1);
        let base = Self::for_threshold(
            s_target,
            1.0 - (1.0 - p_target).powf(f64::from(cluster_size).recip()),
            max_rows,
        );
        // The per-pair requirement weakens to p' with (1-p') = (1-p)^(1/c).
        base
    }

    /// The threshold similarity `(1/b)^{1/r}` of these parameters.
    pub fn threshold(&self) -> f64 {
        crate::banding::Banding::new(self.bands, self.rows).threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rows of paper Table I (r = 1): (bands, s, P_pair, P_cluster@c=10).
    ///
    /// Two printed rows — (b=100, s=0.001) and (b=100, s=0.01) — disagree
    /// with the paper's own formula `1 − (1 − s^r)^b` (the first appears to
    /// have been computed with b=10); they are excluded here and the
    /// discrepancy is recorded in EXPERIMENTS.md. All other rows of both
    /// tables match the formula to print precision.
    const TABLE1: &[(u32, f64, f64, f64)] = &[
        (10, 0.01, 0.09, 0.61),
        (10, 0.1, 0.65, 1.0),
        (10, 0.2, 0.89, 1.0),
        (10, 0.5, 0.99, 1.0),
        (100, 0.1, 0.99, 1.0),
        (100, 0.5, 1.0, 1.0),
        (100, 0.8, 1.0, 1.0),
        (800, 0.0001, 0.07, 0.52),
        (800, 0.001, 0.55, 0.99),
        (800, 0.01, 0.99, 1.0),
        (800, 0.1, 1.0, 1.0),
    ];

    /// Rows of paper Table II (r = 5).
    const TABLE2: &[(u32, f64, f64, f64)] = &[
        (10, 0.1, 0.0001, 0.001),
        (10, 0.2, 0.003, 0.03),
        (10, 0.5, 0.27, 0.96),
        (10, 0.8, 0.98, 1.0),
        (100, 0.1, 0.001, 0.01),
        (100, 0.5, 0.95, 1.0),
        (800, 0.1, 0.008, 0.08),
        (800, 0.2, 0.23, 0.93),
        (800, 0.3, 0.86, 1.0),
    ];

    fn close(a: f64, b: f64) -> bool {
        // Paper values are printed with 1–2 significant figures.
        (a - b).abs() <= 0.012 + 0.06 * b
    }

    #[test]
    fn reproduces_table1() {
        for &(bands, s, p_pair, p_cluster) in TABLE1 {
            let got_pair = candidate_probability(s, 1, bands);
            let got_cluster = cluster_hit_probability(s, 1, bands, 10);
            assert!(
                close(got_pair, p_pair),
                "b={bands} s={s}: pair {got_pair} vs {p_pair}"
            );
            assert!(
                close(got_cluster, p_cluster),
                "b={bands} s={s}: cluster {got_cluster} vs {p_cluster}"
            );
        }
    }

    #[test]
    fn reproduces_table2() {
        for &(bands, s, p_pair, p_cluster) in TABLE2 {
            let got_pair = candidate_probability(s, 5, bands);
            let got_cluster = cluster_hit_probability(s, 5, bands, 10);
            assert!(
                close(got_pair, p_pair),
                "b={bands} s={s}: pair {got_pair} vs {p_pair}"
            );
            assert!(
                close(got_cluster, p_cluster),
                "b={bands} s={s}: cluster {got_cluster} vs {p_cluster}"
            );
        }
    }

    #[test]
    fn table1_known_typo_rows_disagree_with_formula() {
        // Documents the discrepancy: the paper prints 0.009 where the formula
        // gives 0.095 (which *is* the b=10 value, suggesting a row slip), and
        // 0.3 where the formula gives 0.63.
        assert!((candidate_probability(0.001, 1, 100) - 0.0952).abs() < 0.001);
        assert!((candidate_probability(0.001, 1, 10) - 0.00995).abs() < 0.001);
        assert!((candidate_probability(0.01, 1, 100) - 0.634).abs() < 0.001);
    }

    #[test]
    fn footnote_example() {
        // Paper footnote 1: 1 − (1 − 0.1)^50 ≈ 0.99 with r=1, b=1, c=50.
        let p = cluster_hit_probability(0.1, 1, 1, 50);
        assert!((p - 0.9948).abs() < 0.001);
    }

    #[test]
    fn error_bound_matches_worked_example() {
        // §III-C: m=100, r=1, b=25, |C_n|=20 → ≈ 0.08.
        let p = error_bound(100, 1, 25, 20);
        assert!((p - 0.0805).abs() < 0.005, "bound {p}");
    }

    #[test]
    fn probabilities_are_monotone_in_bands() {
        let mut last = 0.0;
        for b in [1u32, 5, 10, 50, 200] {
            let p = candidate_probability(0.2, 3, b);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn probabilities_decrease_with_rows() {
        // More rows per band makes collisions stricter.
        let p1 = candidate_probability(0.3, 1, 20);
        let p5 = candidate_probability(0.3, 5, 20);
        assert!(p5 < p1);
    }

    #[test]
    fn extremes() {
        assert_eq!(candidate_probability(0.0, 3, 10), 0.0);
        assert_eq!(candidate_probability(1.0, 3, 10), 1.0);
        assert_eq!(cluster_hit_probability(0.0, 1, 1, 100), 0.0);
    }

    #[test]
    #[should_panic(expected = "similarity")]
    fn similarity_out_of_range_panics() {
        let _ = candidate_probability(1.5, 1, 1);
    }

    #[test]
    fn error_bound_shrinks_with_cluster_size() {
        let small = error_bound(100, 1, 25, 5);
        let large = error_bound(100, 1, 25, 50);
        assert!(large < small);
    }

    #[test]
    fn advisor_meets_target() {
        let p = LshParams::for_threshold(0.3, 0.95, 6);
        let achieved = candidate_probability(0.3, p.rows, p.bands);
        assert!(achieved >= 0.95, "params {p:?} achieve only {achieved}");
    }

    #[test]
    fn advisor_exact_similarity_one() {
        let p = LshParams::for_threshold(1.0, 0.9, 4);
        assert_eq!(p.bands, 1);
        assert_eq!(candidate_probability(1.0, p.rows, p.bands), 1.0);
    }

    #[test]
    fn advisor_prefers_cheaper_signatures() {
        // For an easy target the advisor should not pick an extravagant n.
        let p = LshParams::for_threshold(0.8, 0.5, 8);
        assert!(p.rows as u64 * p.bands as u64 <= 8, "wasteful params {p:?}");
    }

    #[test]
    fn cluster_advisor_is_never_more_expensive() {
        let strict = LshParams::for_threshold(0.1, 0.9, 5);
        let relaxed = LshParams::for_cluster_threshold(0.1, 0.9, 5, 20);
        assert!(
            u64::from(relaxed.rows) * u64::from(relaxed.bands)
                <= u64::from(strict.rows) * u64::from(strict.bands)
        );
        // And it still meets the target when the cluster has 20 members.
        let p = cluster_hit_probability(0.1, relaxed.rows, relaxed.bands, 20);
        assert!(p >= 0.9 - 1e-9, "cluster params {relaxed:?} achieve {p}");
    }

    #[test]
    fn threshold_accessor() {
        let p = LshParams { rows: 5, bands: 20 };
        assert!((p.threshold() - (1.0f64 / 20.0).powf(0.2)).abs() < 1e-12);
    }
}
